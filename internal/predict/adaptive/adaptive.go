// Package adaptive implements the Rinnegan-style adaptive-library
// baseline of Table IV: a performance-model scheme whose "equation's
// output is directly proportional to only the data movement and
// accelerator utilization parameters given by a programmer/profiler". It
// fits two coefficients per accelerator from the training database and
// deploys default (untuned) intra-accelerator settings — which is why it
// trails the richer learners in the paper.
package adaptive

import (
	"errors"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

// Library is the adaptive-library predictor.
type Library struct {
	limits config.Limits
	// Per-accelerator linear model: score = bias + a*dataMovement +
	// b*utilizationDemand; the lower score wins.
	gpuCoef, mcCoef [3]float64
	ready           bool
}

var _ predict.Trainable = (*Library)(nil)

// New returns an untrained adaptive library for a pair's limits.
func New(limits config.Limits) *Library { return &Library{limits: limits} }

// Name implements predict.Predictor.
func (l *Library) Name() string { return "Adaptive Library" }

// dataMovement and utilizationDemand are the two profiler-supplied
// parameters of the Rinnegan model, expressed over the (B, I) space.
func dataMovement(f feature.Vector) float64 {
	b := f.B()
	return (b[feature.BReadOnly] + 2*b[feature.BReadWrite] + b[feature.BIndirect]) / 4
}

func utilizationDemand(f feature.Vector) float64 {
	b, iv := f.B(), f.I()
	return (b[feature.BVertexDivision] + b[feature.BPareto] + b[feature.BParetoDynamic] + iv[0]) / 4
}

// Train fits the per-accelerator coefficients with a one-dimensional
// logistic-style update: samples whose best M selected the GPU pull the
// GPU score down at their (movement, demand) point and vice versa.
func (l *Library) Train(samples []predict.Sample) error {
	if len(samples) == 0 {
		return errors.New("adaptive: no training samples")
	}
	l.gpuCoef = [3]float64{0, 0.5, -0.5}
	l.mcCoef = [3]float64{0, -0.5, 0.5}
	const lr = 0.05
	for epoch := 0; epoch < 20; epoch++ {
		for i := range samples {
			f := samples[i].Features
			x := [3]float64{1, dataMovement(f), utilizationDemand(f)}
			gpuBest := samples[i].Target[0] < 0.5
			// Perceptron-style update on the score difference.
			diff := l.score(l.gpuCoef, x) - l.score(l.mcCoef, x)
			want := 1.0 // want mc score smaller -> diff positive
			if gpuBest {
				want = -1
			}
			if diff*want <= 0 {
				for k := 0; k < 3; k++ {
					l.gpuCoef[k] -= lr * want * x[k]
					l.mcCoef[k] += lr * want * x[k]
				}
			}
		}
	}
	l.ready = true
	return nil
}

func (l *Library) score(c [3]float64, x [3]float64) float64 {
	return c[0]*x[0] + c[1]*x[1] + c[2]*x[2]
}

// Predict implements predict.Predictor: pick the accelerator with the
// lower modeled cost and deploy untuned defaults on it — the adaptive
// library does not model intra-accelerator choices.
func (l *Library) Predict(f feature.Vector) config.M {
	x := [3]float64{1, dataMovement(f), utilizationDemand(f)}
	if l.score(l.gpuCoef, x) <= l.score(l.mcCoef, x) {
		return config.DefaultGPU(l.limits)
	}
	return config.DefaultMulticore(l.limits)
}
