package adaptive

import (
	"math/rand"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

func limits() config.Limits {
	return config.Limits{
		MaxCores: 61, MaxThreadsPerCore: 4, MaxSIMD: 16,
		MaxGlobalThreads: 8192, MaxLocalThreads: 256,
	}
}

// separableSamples encodes the Rinnegan premise: data-movement-heavy
// combinations belong on the multicore, utilization-demanding ones on
// the GPU.
func separableSamples(n int, seed int64) []predict.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]predict.Sample, n)
	for i := range out {
		var f feature.Vector
		for j := range f {
			f[j] = rng.Float64() * 0.3
		}
		var target [config.NumVariables]float64
		if i%2 == 0 {
			// Heavy shared read-write data: multicore.
			f[feature.BReadWrite] = 0.8 + rng.Float64()*0.2
			f[feature.BIndirect] = 0.6
			f[feature.BVertexDivision] = 0.1
			target[0] = 1
		} else {
			// Massively parallel, little sharing: GPU.
			f[feature.BVertexDivision] = 0.8 + rng.Float64()*0.2
			f[feature.NumB] = 0.9 // I1 large
			f[feature.BReadWrite] = 0.05
			target[0] = 0
		}
		out[i] = predict.Sample{Features: f, Target: target}
	}
	return out
}

func TestName(t *testing.T) {
	if New(limits()).Name() != "Adaptive Library" {
		t.Fatal("Table IV row name")
	}
}

func TestTrainEmptyErrors(t *testing.T) {
	if err := New(limits()).Train(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestLearnsSeparableAcceleratorChoice(t *testing.T) {
	lib := New(limits())
	if err := lib.Train(separableSamples(400, 1)); err != nil {
		t.Fatal(err)
	}
	correct := 0
	holdout := separableSamples(200, 99)
	for _, s := range holdout {
		m := lib.Predict(s.Features)
		wantMC := s.Target[0] >= 0.5
		if (m.Accelerator == config.Multicore) == wantMC {
			correct++
		}
	}
	if frac := float64(correct) / 200; frac < 0.8 {
		t.Fatalf("separable accuracy %.2f want >= 0.8", frac)
	}
}

func TestPredictDeploysDefaults(t *testing.T) {
	l := limits()
	lib := New(l)
	if err := lib.Train(separableSamples(100, 3)); err != nil {
		t.Fatal(err)
	}
	var f feature.Vector
	f[feature.BReadWrite] = 1
	m := lib.Predict(f)
	// The adaptive library does not tune intra-accelerator choices: it
	// deploys the untuned defaults of the chosen accelerator.
	if m.Accelerator == config.GPU {
		if m != config.DefaultGPU(l) {
			t.Fatalf("expected GPU defaults, got %+v", m)
		}
	} else if m != config.DefaultMulticore(l) {
		t.Fatalf("expected multicore defaults, got %+v", m)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(limits()), New(limits())
	samples := separableSamples(100, 5)
	if err := a.Train(samples); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(samples); err != nil {
		t.Fatal(err)
	}
	for _, s := range separableSamples(20, 9) {
		if a.Predict(s.Features) != b.Predict(s.Features) {
			t.Fatal("training not deterministic")
		}
	}
}
