// Package dtree implements the paper's Section IV analytical model: a
// three-layer hand-built decision tree for the inter-accelerator choice
// M1, followed by the linear equations that set the intra-accelerator
// choices M2-M20 from the (B, I) characterization.
package dtree

import (
	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

// Threshold is the paper's default decision threshold: "a threshold of
// 0.5 is set as default ... as it shows the unbiased mid-point in
// normalized B,I values". The ablation bench sweeps it.
const Threshold = 0.5

// Tree is the decision-tree heuristic predictor.
type Tree struct {
	limits config.Limits
	// threshold is the inter-accelerator decision mid-point.
	threshold float64
}

// New returns a Tree for an accelerator pair's deployment limits.
func New(limits config.Limits) *Tree {
	return &Tree{limits: limits, threshold: Threshold}
}

// NewWithThreshold returns a Tree with a tuned decision threshold — the
// paper leaves threshold tuning as future work; the ablation bench
// exercises it.
func NewWithThreshold(limits config.Limits, threshold float64) *Tree {
	return &Tree{limits: limits, threshold: threshold}
}

// FitThreshold realizes the paper's deferred future work ("other
// thresholds may also work by fine tuning thresholds"): it sweeps the
// decision mid-point over the 0.1 grid and returns the tree whose
// inter-accelerator selections agree most often with the tuned targets
// of an offline database. Ties resolve to the paper's default 0.5.
func FitThreshold(limits config.Limits, samples []predict.Sample) *Tree {
	bestTh, bestAgree := Threshold, -1
	for _, th := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8} {
		t := NewWithThreshold(limits, th)
		agree := 0
		for i := range samples {
			targetMC := samples[i].Target[0] >= 0.5
			pickMC := t.SelectAccelerator(samples[i].Features) == config.Multicore
			if targetMC == pickMC {
				agree++
			}
		}
		if agree > bestAgree || (agree == bestAgree && th == Threshold) {
			bestAgree, bestTh = agree, th
		}
	}
	return NewWithThreshold(limits, bestTh)
}

// ThresholdValue exposes the tree's decision mid-point (for reports).
func (t *Tree) ThresholdValue() float64 { return t.threshold }

// Name implements predict.Predictor.
func (t *Tree) Name() string { return "Decision Tree" }

// Predict implements predict.Predictor: M1 via the decision tree, then
// the intra-accelerator equations.
func (t *Tree) Predict(f feature.Vector) config.M {
	accel := t.SelectAccelerator(f)
	if accel == config.GPU {
		return t.GPUChoices(f)
	}
	return t.MulticoreChoices(f)
}

// SelectAccelerator is the inter-accelerator (M1) model: a three-layer
// tree over phase structure (layer 1), data/compute character (layer 2)
// and a scored fallback (layer 3). Each rule mirrors a partial decision
// example from Section IV; the input-size gates encode the paper's
// observed exceptions (PR-CA on the GPU, Frnd/Kron combinations on the
// GPU because "they are large and require more threads").
func (t *Tree) SelectAccelerator(f feature.Vector) config.Accel {
	return t.decide(f, nil)
}

// ExplainAccelerator returns the M1 choice together with the branch
// taken at each layer — the decision path the serving layer records as
// provenance, queryable at /v1/explain/{trace-id}.
func (t *Tree) ExplainAccelerator(f feature.Vector) (config.Accel, []string) {
	var path []string
	accel := t.decide(f, func(s string) { path = append(path, s) })
	return accel, path
}

// ExplainPredict is Predict with the decision path attached: the M1
// branches plus which intra-accelerator equation set produced M2-M20.
func (t *Tree) ExplainPredict(f feature.Vector) (config.M, []string) {
	accel, path := t.ExplainAccelerator(f)
	if accel == config.GPU {
		return t.GPUChoices(f), append(path, "equations: GPU M19-M20")
	}
	return t.MulticoreChoices(f), append(path, "equations: multicore M2-M18")
}

// decide walks the tree; when note is non-nil it receives one line per
// branch taken. The explained and plain walks are the same code, so
// the provenance path can never drift from the served decision.
func (t *Tree) decide(f feature.Vector, note func(string)) config.Accel {
	if note == nil {
		note = func(string) {}
	}
	b, iv := f.B(), f.I()
	th := t.threshold

	// Layer 1: input-size gates shared by every rule below. "big" inputs
	// outgrow the multicore's coherent caches, handing the advantage to
	// GPU thread counts (the paper's Frnd/Kron exceptions); "tiny"
	// inputs are fully cache-resident on the multicore.
	if iv[0] <= 0.05 {
		note("layer1: tiny input (I1 <= 0.05), cache-resident -> multicore")
		return config.Multicore
	}

	// Layer 2: phase structure.
	switch {
	case b[feature.BPushPop] >= 0.8:
		// Pure push-pop (DFS): stack discipline suits the multicore's
		// caches and queues until the graph is large enough that the
		// GPU's inner-loop threading dominates.
		if iv[0] <= 0.3 {
			note("layer2: pure push-pop (B>=0.8), small input -> multicore")
			return config.Multicore
		}
		note("layer2: pure push-pop (B>=0.8), large input -> GPU")
		return config.GPU
	case b[feature.BPushPop] >= 0.3 && b[feature.BReduction] >= 0.2 &&
		b[feature.BReadWrite] >= th:
		// Push-pop + bucket reduction over shared read-write data
		// (SSSP-Delta): multicore, unless the graph is huge and needs
		// GPU threading (Fig 7 selects the Xeon Phi for SSSP-Delta-CA).
		if iv[0] < 0.65 {
			note("layer2: push-pop + reduction over read-write data -> multicore")
			return config.Multicore
		}
		note("layer2: push-pop + reduction, huge input -> GPU")
		return config.GPU
	}

	// Layer 3: data/compute character.
	switch {
	case b[feature.BIndirect] >= 0.4 && b[feature.BPushPop] < th:
		// Indirect double-pointer addressing (Conn.Comp.): multicore
		// caches resolve complex pointers until the parent arrays
		// outgrow them.
		if iv[0] <= 0.55 {
			note("layer3: indirect addressing, arrays fit caches -> multicore")
			return config.Multicore
		}
		note("layer3: indirect addressing, arrays outgrow caches -> GPU")
		return config.GPU
	case b[feature.BFloatingPoint] >= th && b[feature.BContention] >= 0.4:
		// FP with contended scatters (PageRank-DP, Comm): the
		// multicore's cheap atomics and caches win below huge scales.
		if iv[0] < 0.65 {
			note("layer3: FP + contended scatters -> multicore")
			return config.Multicore
		}
		note("layer3: FP + contended scatters, huge input -> GPU")
		return config.GPU
	case b[feature.BFloatingPoint] >= th:
		// FP gather-style (PageRank): multicore only when strong hubs
		// keep the rank vector hot in cache and the graph is small
		// (PR-CA runs on the GPU in the paper: no density for SIMD).
		if iv[2] >= 0.4 && iv[0] <= 0.2 {
			note("layer3: FP gather, hubs keep rank hot -> multicore")
			return config.Multicore
		}
		note("layer3: FP gather -> GPU")
		return config.GPU
	case b[feature.BReadOnly] >= 0.6 && b[feature.BReduction] >= 0.3:
		// Heavy read-only reuse with a count reduction (Tri.Cnt):
		// multicore cache reuse wins.
		note("layer3: read-only reuse + reduction -> multicore")
		return config.Multicore
	}

	// Layer 4: parallelism structure for the remaining (traversal-style)
	// benchmarks.
	if b[feature.BVertexDivision] > th {
		// Full-sweep vertex division (SSSP-BF): the GPU wins when the
		// total work is large — many vertices or long convergence
		// (diameter) — and loses to cache-resident multicore runs.
		if iv[0] >= 0.5 || iv[3] >= 0.6 {
			note("layer4: vertex division, large total work -> GPU")
			return config.GPU
		}
		note("layer4: vertex division, cache-resident -> multicore")
		return config.Multicore
	}
	if b[feature.BPareto] > th || b[feature.BParetoDynamic] > th {
		// Frontier traversals (BFS): thin levels favour the multicore
		// until the frontiers are wide enough for GPU threading.
		if iv[0] >= 0.5 {
			note("layer4: frontier traversal, wide frontiers -> GPU")
			return config.GPU
		}
		note("layer4: frontier traversal, thin levels -> multicore")
		return config.Multicore
	}

	// Layer 5: scored fallback for unseen mixes.
	gpuScore := b[feature.BVertexDivision] + b[feature.BPareto] +
		b[feature.BParetoDynamic] + b[feature.BLocal] + 2*iv[0]
	mcScore := b[feature.BPushPop] + b[feature.BReduction] +
		b[feature.BReadWrite] + b[feature.BIndirect] + b[feature.BContention]
	if gpuScore >= mcScore {
		note("layer5: scored fallback -> GPU")
		return config.GPU
	}
	note("layer5: scored fallback -> multicore")
	return config.Multicore
}

// GPUChoices applies the GPU equations. The paper prints
//
//	M19 = I1 * max_global_threads + k
//	M20 = Avg.Deg * max_local_threads + k
//
// and defers the "complete M model" to its repository; as in that full
// model, the deployed forms add a floor to the global-thread count (a
// GPU kernel is never launched with a handful of threads) and use a
// density proxy robust to sparse inputs for the work-group size.
func (t *Tree) GPUChoices(f feature.Vector) config.M {
	iv := f.I()
	m := config.DefaultGPU(t.limits)
	// Global threading grows with graph size above a launch floor; the
	// slope is shallow because bandwidth saturates near a quarter of the
	// maximum and oversubscription only raises cache pressure.
	m.GlobalThreads = int((0.25 + 0.30*iv[0]) * float64(t.limits.MaxGlobalThreads))
	// Local (work-group) threading follows edge density: dense inputs
	// parallelize their inner edge loops, sparse ones waste the group —
	// and oversized groups thrash the small GPU cache, so the range is
	// narrow.
	m.LocalThreads = int(densityProxy(iv)*float64(t.limits.MaxLocalThreads)/8) +
		t.limits.MaxLocalThreads/32 + 1
	return m.Clamp(t.limits)
}

// densityProxy estimates normalized inner-loop length (average degree)
// from the I variables: edge count in excess of vertex count, boosted by
// strong hubs.
func densityProxy(iv feature.IVector) float64 {
	d := 3*(iv[1]-iv[0]) + 0.3*iv[2]
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// MulticoreChoices applies the paper's multicore equations:
//
//	M2    = I1 * max_cores + k
//	M3,10 = Avg.Deg * max_multithreading + k
//	M4    = (B12 + B13)/2 * max_thread_wait_time + k
//	M5-7  = Avg.Deg.Dia * max_thread_placement + k
//	M8    = (Avg.Deg.Dia + B10)/2 * max_thread_placement + k (k=0)
//
// plus the OpenMP relationships the paper defers to its repository:
// dynamic scheduling for contended read-write data, spin counts and wait
// policy tracking contention, nesting tracking barrier structure.
func (t *Tree) MulticoreChoices(f feature.Vector) config.M {
	b, iv := f.B(), f.I()
	density := densityProxy(iv)
	// Placement looseness follows work divergence (hubs) and dependency
	// depth (diameter) — the paper's Avg.Deg.Dia intent with a proxy
	// that stays monotone on sparse inputs.
	placement := (iv[3] + iv[2]) / 2

	m := config.DefaultMulticore(t.limits)
	// Graph-analytics vertex counts always dwarf core counts, so the
	// repository model saturates the cores and tunes concurrency through
	// threads-per-core, SIMD and scheduling instead.
	m.Cores = t.limits.MaxCores
	m.ThreadsPerCore = t.limits.MaxThreadsPerCore // hide in-order stalls
	// SIMD width follows edge density ("FP operations perform optimally
	// on multicores if they are in a dense format to exploit SIMD").
	m.SIMDWidth = int(density*float64(t.limits.MaxSIMD)) + t.limits.MaxSIMD/2 + 1
	m.BlocktimeMS = int((b[feature.BContention]+b[feature.BBarriers])/2*1000) + 1
	m.PlaceCore = placement
	m.PlaceThread = placement
	m.PlaceOffset = placement
	m.Affinity = (placement + b[feature.BReadWrite]) / 2

	// OpenMP runtime choices (M9, M11-M18).
	if b[feature.BReadWrite] >= Threshold || b[feature.BContention] >= 0.4 ||
		iv[2] >= 0.5 {
		m.Schedule = config.ScheduleDynamic
		m.ChunkSize = 64
	} else {
		m.Schedule = config.ScheduleStatic
		m.ChunkSize = 512
	}
	m.ActiveWait = b[feature.BContention] >= 0.3
	m.SpinCount = int(b[feature.BContention] * float64(1<<20))
	m.Nested = false // nesting only pays for very wide inner loops
	m.MaxActiveLevels = 1
	m.ProcBind = m.Affinity >= Threshold
	m.DynamicAdjust = false
	m.WorkStealing = iv[2] >= 0.7 // steal under heavy hub-induced skew

	return m.Clamp(t.limits)
}
