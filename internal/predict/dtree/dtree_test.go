package dtree

import (
	"testing"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
)

func tree() *Tree { return New(machine.PrimaryPair().Limits()) }

func combo(bench, short string, iv feature.IVector) feature.Vector {
	return feature.Combine(feature.MustCatalog(bench), iv)
}

// Declared I vectors of the anchor datasets (verified against Fig 4 by
// the feature package tests).
var (
	iCA   = feature.IVector{0.1, 0.1, 0.0, 0.8}
	iFB   = feature.IVector{0.2, 0.4, 0.7, 0.0}
	iTwtr = feature.IVector{0.7, 0.8, 1.0, 0.0}
	iFrnd = feature.IVector{0.8, 0.8, 0.5, 0.2}
	iCO   = feature.IVector{0.0, 0.0, 0.4, 0.0}
	iCAGE = feature.IVector{0.1, 0.3, 0.2, 0.0}
	iKron = feature.IVector{0.9, 0.8, 0.8, 0.0}
)

func TestFig7Selections(t *testing.T) {
	// Fig 7: SSSP-BF on USA-Cal selects the GPU; SSSP-Delta selects the
	// multicore.
	tr := tree()
	if got := tr.SelectAccelerator(combo(algo.NameSSSPBF, "CA", iCA)); got != config.GPU {
		t.Fatalf("SSSP-BF-CA selected %v, Fig 7 selects the GPU", got)
	}
	if got := tr.SelectAccelerator(combo(algo.NameSSSPDelta, "CA", iCA)); got != config.Multicore {
		t.Fatalf("SSSP-Delta-CA selected %v, Fig 7 selects the multicore", got)
	}
}

func TestPaperSelectionNarratives(t *testing.T) {
	tr := tree()
	tests := []struct {
		name  string
		bench string
		iv    feature.IVector
		want  config.Accel
		why   string
	}{
		{"BFS-Twtr", algo.NameBFS, iTwtr, config.GPU,
			"highly concurrent algorithms fare well with the GPU"},
		{"BFS-Frnd", algo.NameBFS, iFrnd, config.GPU, "large graphs need GPU threads"},
		{"DFS-CO", algo.NameDFS, iCO, config.Multicore,
			"in DFS-CO the multicore outperforms the GPU"},
		{"DFS-Twtr", algo.NameDFS, iTwtr, config.GPU, "DFS mostly fares well with the GPU"},
		{"PR-CA", algo.NamePageRank, iCA, config.GPU,
			"PR-CA does not perform well on a Xeon Phi"},
		{"PR-FB", algo.NamePageRank, iFB, config.Multicore,
			"FP-requiring benchmarks perform well on the multicore"},
		{"PR-Kron", algo.NamePageRank, iKron, config.GPU,
			"Frnd and Kron perform better on the GPU"},
		{"Comm-FB", algo.NameCommunity, iFB, config.Multicore, "Comm performs well on the Phi"},
		{"Comm-Frnd", algo.NameCommunity, iFrnd, config.GPU, "large-graph exception"},
		{"Delta-Frnd", algo.NameSSSPDelta, iFrnd, config.GPU, "large-graph exception"},
		{"Delta-CAGE", algo.NameSSSPDelta, iCAGE, config.Multicore,
			"push-pop + reductions fit the multicore"},
		{"Tri-FB", algo.NameTriangle, iFB, config.Multicore, "read-only reuse"},
		{"CC-Twtr", algo.NameConnComp, iTwtr, config.GPU, "large-graph exception"},
		{"CC-CO", algo.NameConnComp, iCO, config.Multicore, "cache-resident tiny graph"},
	}
	for _, tc := range tests {
		if got := tr.SelectAccelerator(combo(tc.bench, tc.name, tc.iv)); got != tc.want {
			t.Errorf("%s: selected %v want %v (%s)", tc.name, got, tc.want, tc.why)
		}
	}
}

func TestPredictDeploysWithinLimits(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	tr := New(limits)
	for _, bench := range algo.Names() {
		for _, iv := range []feature.IVector{iCA, iFB, iTwtr, iFrnd, iCO, iCAGE, iKron} {
			m := tr.Predict(combo(bench, "x", iv))
			if m.Clamp(limits) != m {
				t.Fatalf("%s: prediction not clamped: %+v", bench, m)
			}
			if m.Accelerator == config.GPU {
				if m.GlobalThreads < 1 || m.LocalThreads < 1 {
					t.Fatalf("%s: degenerate GPU deployment %v", bench, m)
				}
			} else if m.Cores < 1 || m.ThreadsPerCore < 1 {
				t.Fatalf("%s: degenerate multicore deployment %v", bench, m)
			}
		}
	}
}

func TestGPUEquationsScaleWithI(t *testing.T) {
	tr := tree()
	small := tr.GPUChoices(combo(algo.NameBFS, "s", feature.IVector{0.1, 0.1, 0, 0}))
	large := tr.GPUChoices(combo(algo.NameBFS, "l", feature.IVector{0.9, 0.9, 0, 0}))
	if large.GlobalThreads <= small.GlobalThreads {
		t.Fatalf("M19 must grow with I1: %d vs %d", small.GlobalThreads, large.GlobalThreads)
	}
	sparse := tr.GPUChoices(combo(algo.NameBFS, "sp", feature.IVector{0.5, 0.5, 0, 0.8}))
	dense := tr.GPUChoices(combo(algo.NameBFS, "dn", feature.IVector{0.5, 0.8, 0.5, 0}))
	if dense.LocalThreads <= sparse.LocalThreads {
		t.Fatalf("M20 must grow with density: %d vs %d", sparse.LocalThreads, dense.LocalThreads)
	}
}

func TestMulticoreEquations(t *testing.T) {
	tr := tree()
	// Blocktime (M4) follows contention (B12, B13).
	calm := feature.MustCatalog(algo.NameBFS)
	hot := calm
	hot[feature.BContention] = 1
	hot[feature.BBarriers] = 1
	mCalm := tr.MulticoreChoices(feature.Combine(calm, iFB))
	mHot := tr.MulticoreChoices(feature.Combine(hot, iFB))
	if mHot.BlocktimeMS <= mCalm.BlocktimeMS {
		t.Fatalf("M4 must grow with contention: %d vs %d", mCalm.BlocktimeMS, mHot.BlocktimeMS)
	}
	if !mHot.ActiveWait || mHot.SpinCount <= mCalm.SpinCount {
		t.Fatal("wait policy and spin count must track contention")
	}
	// Placement (M5-M7) follows diameter.
	deep := tr.MulticoreChoices(combo(algo.NameSSSPDelta, "deep", feature.IVector{0.3, 0.3, 0.2, 1}))
	flat := tr.MulticoreChoices(combo(algo.NameSSSPDelta, "flat", feature.IVector{0.3, 0.3, 0.2, 0}))
	if deep.PlaceCore <= flat.PlaceCore {
		t.Fatalf("M5-7 must grow with diameter: %v vs %v", flat.PlaceCore, deep.PlaceCore)
	}
	// Schedule (M11): contended read-write data wants dynamic.
	rw := feature.MustCatalog(algo.NameSSSPDelta) // B10=0.6
	if got := tr.MulticoreChoices(feature.Combine(rw, iCA)); got.Schedule != config.ScheduleDynamic {
		t.Fatalf("B10-heavy benchmark should get dynamic scheduling, got %v", got.Schedule)
	}
}

func TestThresholdVariant(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	low := NewWithThreshold(limits, 0.2)
	high := NewWithThreshold(limits, 0.9)
	// Moving the threshold must change at least one anchor decision.
	changed := false
	for _, bench := range algo.Names() {
		for _, iv := range []feature.IVector{iCA, iFB, iTwtr, iCO} {
			f := combo(bench, "t", iv)
			if low.SelectAccelerator(f) != high.SelectAccelerator(f) {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("threshold has no effect on any decision")
	}
}

func TestName(t *testing.T) {
	if tree().Name() != "Decision Tree" {
		t.Fatal("Table IV row name")
	}
}

func TestFitThreshold(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	// Construct a database whose best M1 choices a 0.7-ish threshold
	// explains better than 0.5: Comm-like combinations (B6=0.6) on
	// mid-size inputs that actually run best on the GPU escape the
	// FP-contended multicore rule only when the threshold rises above
	// their B6.
	var samples []predict.Sample
	for i := 0; i < 60; i++ {
		b := feature.MustCatalog(algo.NameCommunity) // B6=0.6, B12=0.4
		iv := feature.IVector{0.5, 0.6, 0.1, 1.0}
		var target [config.NumVariables]float64
		target[0] = 0 // GPU is best for these
		samples = append(samples, predict.Sample{
			Features: feature.Combine(b, iv),
			Target:   target,
		})
	}
	fitted := FitThreshold(limits, samples)
	if fitted.ThresholdValue() <= Threshold {
		t.Fatalf("fitted threshold %v should exceed the default for this database",
			fitted.ThresholdValue())
	}
	// Default ties resolve to the paper's 0.5.
	var balanced []predict.Sample
	if got := FitThreshold(limits, balanced).ThresholdValue(); got != Threshold {
		t.Fatalf("empty database should keep the default threshold, got %v", got)
	}
}

func TestDensityProxyBounds(t *testing.T) {
	for _, iv := range []feature.IVector{iCA, iFB, iTwtr, iFrnd, iCO, iCAGE, iKron,
		{0, 1, 1, 1}, {1, 0, 0, 0}} {
		d := densityProxy(iv)
		if d < 0 || d > 1 {
			t.Fatalf("densityProxy(%v)=%v", iv, d)
		}
	}
}
