package dtree

// Golden pinning of the full M1-M20 decision-tree output for the
// canonical catalog rows. The heuristic tree is the paper's workhorse
// predictor (Fig 7) and is pure arithmetic — any drift in ANY of the 20
// machine variables for these rows is a behavior change that must show
// up as a reviewed golden diff, not slip through shape-only assertions.
//
//	go test ./internal/predict/dtree/ -run Golden -update
//
// regenerates testdata/golden_m.json.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenIRows are the canonical input characterizations the tree is
// walked with: the paper's USA-Cal worked example (Section VI) plus a
// dense matrix-like input and a mid-range input, so both accelerator
// branches and the knob equations are exercised.
var goldenIRows = []struct {
	Name string
	I    feature.IVector
}{
	{"usa-cal", feature.IVector{0.1, 0.1, 0, 0.8}},      // sparse road network, huge diameter
	{"cage-dense", feature.IVector{0.9, 0.5, 0.4, 0.1}}, // dense matrix graph
	{"mid", feature.IVector{0.5, 0.3, 0.2, 0.4}},
}

func computeGoldenM(t *testing.T) map[string]config.M {
	t.Helper()
	tree := New(machine.PrimaryPair().Limits())
	out := map[string]config.M{}
	for _, b := range algo.All() {
		cat := feature.MustCatalog(b.Name)
		for _, row := range goldenIRows {
			out[b.Name+"/"+row.Name] = tree.Predict(feature.Combine(cat, row.I))
		}
	}
	return out
}

func TestGoldenFullMVectors(t *testing.T) {
	path := filepath.Join("testdata", "golden_m.json")
	got := computeGoldenM(t)

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d rows)", path, len(got))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want map[string]config.M
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	var names []string
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(got) != len(want) {
		t.Errorf("row count drifted: got %d, golden %d", len(got), len(want))
	}
	for _, name := range names {
		if !reflect.DeepEqual(got[name], want[name]) {
			t.Errorf("%s: full M drifted (rerun with -update after review)\ngot:  %+v\nwant: %+v",
				name, got[name], want[name])
		}
	}

	// The golden must keep encoding the Fig 7 worked example: on USA-Cal
	// the tree sends Bellman-Ford SSSP to the GPU and delta-stepping SSSP
	// to the multicore.
	if m := want[algo.NameSSSPBF+"/usa-cal"]; m.Accelerator != config.GPU {
		t.Errorf("golden sends SSSP-BF/usa-cal to %v, Fig 7 selects the GPU", m.Accelerator)
	}
	if m := want[algo.NameSSSPDelta+"/usa-cal"]; m.Accelerator != config.Multicore {
		t.Errorf("golden sends SSSP-Delta/usa-cal to %v, Fig 7 selects the multicore", m.Accelerator)
	}
}
