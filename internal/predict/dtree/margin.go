package dtree

import (
	"heteromap/internal/feature"
)

// MaxDecisionMargin is the saturation value DecisionMargin reports when
// no probed perturbation flips the inter-accelerator choice: the point
// sits at least one full probe sweep away from every decision boundary.
const MaxDecisionMargin = 0.4

// DecisionMargin measures how far a characterization sits from the
// nearest M1 decision boundary: the smallest single-feature perturbation
// on the 0.1 discretization grid (±0.1, ±0.2, ±0.3, clamped to [0,1])
// that flips the tree's inter-accelerator choice. A margin of 0.1 means
// one grid step of characterization noise changes the accelerator — the
// tree's analog of a leaf with low purity — while MaxDecisionMargin
// marks a point deep inside one region. The serving layer folds this
// into per-prediction confidence for uncertainty routing.
//
// Probing the served tree itself (rather than re-deriving thresholds)
// keeps the margin exact under threshold tuning (NewWithThreshold,
// FitThreshold) and under future rule edits: whatever decide does, the
// margin measures it.
func (t *Tree) DecisionMargin(f feature.Vector) float64 {
	base := t.SelectAccelerator(f)
	for _, delta := range []float64{0.1, 0.2, 0.3} {
		for i := range f {
			for _, sign := range []float64{1, -1} {
				v := f[i] + sign*delta
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				if v == f[i] {
					continue // clamped back onto itself: no probe
				}
				probe := f
				probe[i] = v
				if t.SelectAccelerator(probe) != base {
					return delta
				}
			}
		}
	}
	return MaxDecisionMargin
}
