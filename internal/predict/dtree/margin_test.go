package dtree

import (
	"testing"

	"heteromap/internal/feature"
	"heteromap/internal/machine"
)

// boundaryVector sits one grid step from the layer-4 vertex-division
// input-size gate (I1 >= 0.5 -> GPU): lowering I1 by 0.1 flips the
// choice to multicore.
func boundaryVector() feature.Vector {
	var f feature.Vector
	f[feature.BVertexDivision] = 1.0
	f[feature.BDataAddressing] = 0.8
	f[feature.BReadOnly] = 0.5
	f[feature.BReadWrite] = 0.5
	f[13] = 0.5 // I1 exactly at the layer-4 gate
	f[14] = 0.6 // I2
	f[15] = 0.2 // I3
	f[16] = 0.2 // I4 (below the 0.6 long-convergence gate)
	return f
}

// interiorVector sits deep inside the GPU region: every single-feature
// probe within 0.3 keeps the same choice.
func interiorVector() feature.Vector {
	var f feature.Vector
	f[feature.BVertexDivision] = 1.0
	f[feature.BDataAddressing] = 0.8
	f[feature.BReadOnly] = 0.5
	f[feature.BReadWrite] = 0.5
	f[13] = 0.9 // I1 far above every input-size gate
	f[14] = 1.0
	f[15] = 0.1
	f[16] = 0.9
	return f
}

func TestDecisionMarginBoundaryAndInterior(t *testing.T) {
	tree := New(machine.PrimaryPair().Limits())

	b := boundaryVector()
	if got := tree.SelectAccelerator(b); got.String() != "GPU" {
		t.Fatalf("boundary vector picked %s, want GPU", got)
	}
	if m := tree.DecisionMargin(b); m != 0.1 {
		t.Fatalf("boundary margin = %v, want 0.1 (one grid step flips the choice)", m)
	}

	in := interiorVector()
	if m := tree.DecisionMargin(in); m != MaxDecisionMargin {
		t.Fatalf("interior margin = %v, want saturated %v", m, MaxDecisionMargin)
	}
}

// The margin must agree with the tree it probes: for every tested
// vector, a perturbation smaller than the margin never flips the choice.
func TestDecisionMarginIsAFloor(t *testing.T) {
	tree := New(machine.PrimaryPair().Limits())
	for _, f := range []feature.Vector{boundaryVector(), interiorVector()} {
		base := tree.SelectAccelerator(f)
		margin := tree.DecisionMargin(f)
		for i := range f {
			for _, sign := range []float64{1, -1} {
				for delta := 0.1; delta < margin-1e-9; delta += 0.1 {
					probe := f
					v := f[i] + sign*delta
					if v < 0 {
						v = 0
					}
					if v > 1 {
						v = 1
					}
					probe[i] = v
					if tree.SelectAccelerator(probe) != base {
						t.Fatalf("feature %d %+.1f flips the choice inside the reported margin %v",
							i, sign*delta, margin)
					}
				}
			}
		}
	}
}
