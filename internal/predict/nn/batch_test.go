package nn

import (
	"math"
	"math/rand"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
)

// batchNet trains a small network on varied samples so its per-row
// outputs differ (a constant network would hide row-mixing bugs).
func batchNet(t *testing.T, hidden int) (*Network, config.Limits) {
	t.Helper()
	l := checkedLimits()
	n := New(l, Options{Hidden: hidden, Epochs: 5, Seed: 3})
	rng := rand.New(rand.NewSource(11))
	samples := tinySamples(l)
	for i := range samples {
		for j := range samples[i].Features {
			samples[i].Features[j] = rng.Float64()
		}
	}
	if err := n.Train(samples); err != nil {
		t.Fatal(err)
	}
	return n, l
}

func batchFeats(n int, seed int64) []feature.Vector {
	rng := rand.New(rand.NewSource(seed))
	feats := make([]feature.Vector, n)
	for i := range feats {
		for j := range feats[i] {
			feats[i][j] = rng.Float64()
		}
	}
	return feats
}

// The batch contract, bit for bit: every row of PredictBatchChecked is
// exactly what PredictChecked returns for that row alone, for every
// batch size — including sizes around the micro-batch limits — and
// regardless of which rows share the pass. This is the equivalence the
// serve batcher's batch-native dispatch relies on.
func TestPredictBatchMatchesSingle(t *testing.T) {
	n, l := batchNet(t, 16)
	for _, rows := range []int{1, 2, 3, 8, 17, 64} {
		feats := batchFeats(rows, int64(rows))
		dst := make([]config.M, rows)
		if err := n.PredictBatchChecked(feats, dst); err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		for r := range feats {
			single, err := n.PredictChecked(feats[r])
			if err != nil {
				t.Fatalf("rows=%d row=%d: %v", rows, r, err)
			}
			if dst[r] != single {
				t.Fatalf("rows=%d row=%d: batch %+v != single %+v", rows, r, dst[r], single)
			}
			if err := dst[r].Validate(l); err != nil {
				t.Fatalf("rows=%d row=%d: invalid batch output: %v", rows, r, err)
			}
		}
		// Row order must not leak between rows: the reversed batch
		// answers each row identically.
		rev := make([]feature.Vector, rows)
		for i := range feats {
			rev[rows-1-i] = feats[i]
		}
		rdst := make([]config.M, rows)
		if err := n.PredictBatchChecked(rev, rdst); err != nil {
			t.Fatalf("rows=%d reversed: %v", rows, err)
		}
		for r := range feats {
			if rdst[rows-1-r] != dst[r] {
				t.Fatalf("rows=%d row=%d: answer changed with batch order", rows, r)
			}
		}
	}
}

func TestPredictBatchRejectsUntrainedShortDstAndEmpty(t *testing.T) {
	l := checkedLimits()
	untrained := New(l, Options{Hidden: 8})
	feats := batchFeats(4, 1)
	if err := untrained.PredictBatchChecked(feats, make([]config.M, 4)); err == nil {
		t.Fatal("untrained network answered a batch")
	}
	n, _ := batchNet(t, 8)
	if err := n.PredictBatchChecked(feats, make([]config.M, 3)); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := n.PredictBatchChecked(nil, nil); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
}

// A poisoned network fails the whole batch, mirroring PredictChecked:
// the batcher falls back to per-item dispatch (and its fallback chain)
// rather than serving one bad row.
func TestPredictBatchDetectsNaNWeights(t *testing.T) {
	n, _ := batchNet(t, 8)
	last := n.layers[len(n.layers)-1]
	last.w[0] = math.NaN()
	feats := batchFeats(4, 2)
	if err := n.PredictBatchChecked(feats, make([]config.M, 4)); err == nil {
		t.Fatal("NaN-poisoned network answered a batch")
	}
}

// Batched inference reuses pooled scratch: after warmup a full pass
// stays within a small constant allocation budget regardless of batch
// size (the pool may occasionally miss under GC, hence the slack — but
// per-row allocation would blow straight through it).
func TestPredictBatchBoundedAllocs(t *testing.T) {
	n, _ := batchNet(t, 32)
	feats := batchFeats(16, 5)
	dst := make([]config.M, len(feats))
	if err := n.PredictBatchChecked(feats, dst); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := n.PredictBatchChecked(feats, dst); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("batched inference averaged %.1f allocs per 16-row pass, want <= 2", avg)
	}
}
