package nn

import (
	"math"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

var _ predict.Checked = (*Network)(nil)

func checkedLimits() config.Limits {
	return config.Limits{
		MaxCores: 61, MaxThreadsPerCore: 4, MaxSIMD: 16,
		MaxGlobalThreads: 8192, MaxLocalThreads: 256,
	}
}

func tinySamples(l config.Limits) []predict.Sample {
	target := config.DefaultMulticore(l).Normalize(l)
	var out []predict.Sample
	for i := 0; i < 8; i++ {
		var f feature.Vector
		for j := range f {
			f[j] = float64(i%3) / 3
		}
		out = append(out, predict.Sample{Features: f, Target: target})
	}
	return out
}

func TestPredictCheckedUntrained(t *testing.T) {
	n := New(checkedLimits(), Options{Hidden: 8})
	if _, err := n.PredictChecked(feature.Vector{}); err == nil {
		t.Fatal("untrained network predicted without error")
	}
}

func TestPredictCheckedHealthy(t *testing.T) {
	l := checkedLimits()
	n := New(l, Options{Hidden: 8, Epochs: 3})
	if err := n.Train(tinySamples(l)); err != nil {
		t.Fatal(err)
	}
	m, err := n.PredictChecked(feature.Vector{})
	if err != nil {
		t.Fatalf("healthy network rejected: %v", err)
	}
	if verr := m.Validate(l); verr != nil {
		t.Fatalf("checked prediction invalid: %v", verr)
	}
}

func TestPredictCheckedDetectsNaNWeights(t *testing.T) {
	l := checkedLimits()
	n := New(l, Options{Hidden: 8, Epochs: 3})
	if err := n.Train(tinySamples(l)); err != nil {
		t.Fatal(err)
	}
	// Poison one output-layer weight, simulating a diverged training run.
	last := n.layers[len(n.layers)-1]
	last.w[0] = math.NaN()
	if _, err := n.PredictChecked(feature.Vector{}); err == nil {
		t.Fatal("NaN-poisoned network passed PredictChecked")
	}
	// Plain Predict must still return a deployable (sanitized) M — the
	// ceiling rule — even though the checked path rejects it.
	m := n.Predict(feature.Vector{})
	if err := m.Validate(l); err != nil {
		t.Fatalf("Predict leaked non-finite values: %v", err)
	}
}
