package nn

import (
	"sync"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
)

// A trained network must be shareable across goroutines: the serving
// layer hands one model to a whole worker pool. Inference is pure (no
// layer state is written), which this test proves under -race, and every
// goroutine must see the same deterministic prediction.
func TestPredictConcurrentlySafe(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	net := New(limits, Options{Hidden: 16, Epochs: 4, Seed: 3})

	samples := make([]predict.Sample, 24)
	for i := range samples {
		var f feature.Vector
		for j := range f {
			f[j] = float64((i+j)%11) / 10
		}
		samples[i] = predict.Sample{
			Features: f,
			Target:   config.DefaultMulticore(limits).Normalize(limits),
		}
	}
	if err := net.Train(samples); err != nil {
		t.Fatal(err)
	}

	queries := make([]feature.Vector, 8)
	for i := range queries {
		for j := range queries[i] {
			queries[i][j] = float64((i*3+j)%11) / 10
		}
	}
	want := make([]config.M, len(queries))
	for i, q := range queries {
		want[i] = net.Predict(q)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				q := (g + iter) % len(queries)
				if got := net.Predict(queries[q]); got != want[q] {
					t.Errorf("goroutine %d: Predict diverged: %v != %v", g, got, want[q])
					return
				}
				m, err := net.PredictChecked(queries[q])
				if err != nil {
					t.Errorf("goroutine %d: PredictChecked: %v", g, err)
					return
				}
				if m != want[q] {
					t.Errorf("goroutine %d: PredictChecked diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
