// Package nn implements the paper's Section V-B deep learning predictor
// from scratch: a feed-forward network with 17 input neurons (B1-B13,
// I1-I4), two hidden layers (four layers total, following Fig 10 and the
// four-layer result of Tamura & Tateishi the paper cites), and one output
// neuron per M choice. Hidden width is configurable — Table IV sweeps
// Deep.16 / Deep.32 / Deep.64 / Deep.128 — and training uses Adam over
// mini-batched MSE.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

// Options configure a Network.
type Options struct {
	// Hidden is the neuron count of each of the two hidden layers
	// (paper: 16/32/64/128; 128 is the selected model).
	Hidden int
	// Epochs is the number of training passes (default 60).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// LearningRate is Adam's step size (default 2e-3).
	LearningRate float64
	// Seed fixes weight initialization and shuffling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Hidden <= 0 {
		o.Hidden = 128
	}
	if o.Epochs <= 0 {
		// Wider networks need more passes to converge.
		o.Epochs = 60
		if o.Hidden >= 128 {
			o.Epochs = 90
		}
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 32
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 2e-3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Network is a trained (or trainable) deep predictor.
type Network struct {
	opts   Options
	limits config.Limits
	layers []*dense
	ready  bool
}

var (
	_ predict.Trainable      = (*Network)(nil)
	_ predict.BatchPredictor = (*Network)(nil)
)

// New builds an untrained network for the given deployment limits.
func New(limits config.Limits, opts Options) *Network {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	in, h, out := feature.NumFeatures, opts.Hidden, config.NumVariables
	return &Network{
		opts:   opts,
		limits: limits,
		layers: []*dense{
			newDense(in, h, rng),
			newDense(h, h, rng),
			newDense(h, out, rng),
		},
	}
}

// Name implements predict.Predictor, matching the paper's Table IV labels.
func (n *Network) Name() string { return fmt.Sprintf("Deep.%d", n.opts.Hidden) }

// Hidden returns the hidden-layer width.
func (n *Network) Hidden() int { return n.opts.Hidden }

// Predict implements predict.Predictor. The decoded configuration is
// snapped to the training grid (the network was trained on grid-optimal
// targets). Calling Predict before Train returns the decoded zero vector
// (predictors are validated as Trainable first).
func (n *Network) Predict(f feature.Vector) config.M {
	var v [config.NumVariables]float64
	n.forwardInto(f[:], v[:])
	return config.FromNormalized(v, n.limits).Snapped(n.limits)
}

// PredictChecked implements predict.Checked: unlike Predict, it inspects
// the raw network output before decoding, so diverged or NaN-poisoned
// weights surface as an error instead of being laundered through the
// decode clamp into a syntactically valid but meaningless M.
func (n *Network) PredictChecked(f feature.Vector) (config.M, error) {
	if !n.ready {
		return config.M{}, errors.New("nn: predict before Train")
	}
	var v [config.NumVariables]float64
	n.forwardInto(f[:], v[:])
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return config.M{}, fmt.Errorf("nn: non-finite output %v at M%d", x, i+1)
		}
	}
	return config.FromNormalized(v, n.limits).Snapped(n.limits), nil
}

// PredictBatchChecked implements predict.BatchPredictor: one pass over
// pooled activation matrices answers the whole micro-batch. Per row it
// performs exactly the operations PredictChecked performs — same layer
// order, same inner-loop accumulation order — so every dst[i] is
// bit-identical to PredictChecked(feats[i]); the conformance fastpath
// suite and TestPredictBatchMatchesSingle hold it to that. Any row with
// a non-finite raw output fails the whole batch (the caller re-derives
// per item through the fallback chain, which is where partial-failure
// policy lives).
func (n *Network) PredictBatchChecked(feats []feature.Vector, dst []config.M) error {
	if !n.ready {
		return errors.New("nn: predict before Train")
	}
	rows := len(feats)
	if rows == 0 {
		return nil
	}
	if len(dst) < rows {
		return fmt.Errorf("nn: dst holds %d rows, batch has %d", len(dst), rows)
	}
	w := n.maxWidth()
	sc := scratchPool.Get().(*scratch)
	sc.grow(rows * w)
	cur, prev := sc.a, sc.b
	last := len(n.layers) - 1
	for li, l := range n.layers {
		relu := li < last
		for r := 0; r < rows; r++ {
			in := feats[r][:]
			if li > 0 {
				in = prev[r*w : r*w+n.layers[li-1].out]
			}
			l.applyInto(in, cur[r*w:r*w+l.out], relu)
		}
		cur, prev = prev, cur
	}
	outW := n.layers[last].out
	for r := 0; r < rows; r++ {
		out := prev[r*w : r*w+outW]
		for j, x := range out {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				scratchPool.Put(sc)
				return fmt.Errorf("nn: non-finite output %v at row %d M%d", x, r, j+1)
			}
		}
		var v [config.NumVariables]float64
		copy(v[:], out)
		dst[r] = config.FromNormalized(v, n.limits).Snapped(n.limits)
	}
	scratchPool.Put(sc)
	return nil
}

// M1Margin reports how far the raw inter-accelerator output (M1) sits
// from the 0.5 decision boundary, in [0, 0.5] for a converged network —
// the serving layer records it as the network's decision confidence in
// provenance. Untrained or non-finite networks report 0.
func (n *Network) M1Margin(f feature.Vector) float64 {
	if !n.ready {
		return 0
	}
	var v [config.NumVariables]float64
	n.forwardInto(f[:], v[:])
	m := math.Abs(v[0] - 0.5)
	if math.IsNaN(m) || math.IsInf(m, 0) {
		return 0
	}
	return m
}

// Train implements predict.Trainable with mini-batch Adam on MSE.
func (n *Network) Train(samples []predict.Sample) error {
	if len(samples) == 0 {
		return errors.New("nn: no training samples")
	}
	rng := rand.New(rand.NewSource(n.opts.Seed + 7))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < n.opts.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += n.opts.BatchSize {
			end := start + n.opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			n.zeroGrads()
			for _, k := range idx[start:end] {
				s := &samples[k]
				n.backward(s.Features[:], s.Target[:])
			}
			n.step(float64(end - start))
		}
	}
	n.ready = true
	return nil
}

// Loss returns the mean squared error over a sample set; training
// diagnostics and tests use it.
func (n *Network) Loss(samples []predict.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for i := range samples {
		var out [config.NumVariables]float64
		n.forwardInto(samples[i].Features[:], out[:])
		for j, y := range samples[i].Target {
			d := out[j] - y
			sum += d * d
		}
	}
	return sum / float64(len(samples)*config.NumVariables)
}

// ParamCount returns the number of trainable parameters (weights+biases);
// overhead comparisons use it.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

// scratch holds pooled activation rows for the inference passes; a and b
// ping-pong between consecutive layers. Pooling keeps steady-state
// inference off the heap — the historical per-call implementation paid
// two slice allocations per layer.
type scratch struct{ a, b []float64 }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) grow(n int) {
	if cap(s.a) < n {
		s.a = make([]float64, n)
	}
	s.a = s.a[:cap(s.a)]
	if cap(s.b) < n {
		s.b = make([]float64, n)
	}
	s.b = s.b[:cap(s.b)]
}

// maxWidth is the widest activation row any layer produces (floored at
// the input width) — the per-row stride of the pooled scratch matrices.
func (n *Network) maxWidth() int {
	w := feature.NumFeatures
	for _, l := range n.layers {
		if l.out > w {
			w = l.out
		}
	}
	return w
}

// forwardInto is the inference pass, writing the output layer's
// activations into out (len >= the output width). It is pure with
// respect to layer state — only pooled scratch is written — so a trained
// Network may serve concurrent Predict/PredictChecked calls (the serving
// layer shares one model across a worker pool). Training is the only
// mutating phase; a Network must not be trained while serving. The
// floating-point operation order is identical to the historical
// allocate-per-layer implementation: pooling must never change a
// prediction bit.
func (n *Network) forwardInto(in []float64, out []float64) {
	sc := scratchPool.Get().(*scratch)
	sc.grow(n.maxWidth())
	cur := sc.a
	alt := sc.b
	last := len(n.layers) - 1
	src := in
	for i, l := range n.layers {
		if i == last {
			l.applyInto(src, out[:l.out], false)
			break
		}
		dst := cur[:l.out]
		l.applyInto(src, dst, true)
		src = dst
		cur, alt = alt, cur
	}
	scratchPool.Put(sc)
}

func (n *Network) backward(in, target []float64) {
	// Forward pass keeping activations.
	acts := make([][]float64, len(n.layers)+1)
	acts[0] = in
	last := len(n.layers) - 1
	for i, l := range n.layers {
		acts[i+1] = l.forward(acts[i], i < last)
	}
	out := acts[len(acts)-1]

	// Output delta: MSE with sigmoid output -> (o-y)*o*(1-o).
	delta := make([]float64, len(out))
	for j := range out {
		delta[j] = (out[j] - target[j]) * out[j] * (1 - out[j])
	}
	for i := last; i >= 0; i-- {
		delta = n.layers[i].backward(acts[i], delta, i > 0)
	}
}

func (n *Network) zeroGrads() {
	for _, l := range n.layers {
		l.zeroGrads()
	}
}

func (n *Network) step(batch float64) {
	for _, l := range n.layers {
		l.adamStep(n.opts.LearningRate, batch)
	}
}

// dense is one fully connected layer with Adam state.
type dense struct {
	in, out int
	w, b    []float64 // weights row-major [out][in], biases [out]
	gw, gb  []float64 // accumulated gradients
	mw, vw  []float64 // Adam moments for weights
	mb, vb  []float64 // Adam moments for biases
	t       float64   // Adam timestep
	// preact caches the last pre-activation for backward.
	preact []float64
	hidden bool // last forward used ReLU (true) or sigmoid (false)
}

func newDense(in, out int, rng *rand.Rand) *dense {
	d := &dense{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		mw: make([]float64, in*out),
		vw: make([]float64, in*out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	// He initialization for the ReLU layers; it also behaves well for
	// the sigmoid output at these widths.
	scale := math.Sqrt(2 / float64(in))
	for i := range d.w {
		d.w[i] = rng.NormFloat64() * scale
	}
	return d
}

// apply computes the layer's activations without touching any layer
// state, returning both the post-activation outputs and the
// pre-activations. Inference uses it directly; the training pass wraps it
// with forward, which caches the pre-activations for backward.
func (d *dense) apply(in []float64, relu bool) (out, pre []float64) {
	out = make([]float64, d.out)
	pre = make([]float64, d.out)
	for o := 0; o < d.out; o++ {
		sum := d.b[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for i, x := range in {
			sum += row[i] * x
		}
		pre[o] = sum
		if relu {
			if sum > 0 {
				out[o] = sum
			}
		} else {
			out[o] = sigmoid(sum)
		}
	}
	return out, pre
}

// applyInto is apply writing post-activations into caller-owned (pooled)
// storage instead of allocating, for the inference path. The accumulation
// runs in exactly apply's order — same sum seed, same index order — so the
// two produce bitwise-identical activations; out may hold stale values
// from a previous batch and is fully overwritten.
func (d *dense) applyInto(in, out []float64, relu bool) {
	for o := 0; o < d.out; o++ {
		sum := d.b[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for i, x := range in {
			sum += row[i] * x
		}
		if relu {
			if sum > 0 {
				out[o] = sum
			} else {
				out[o] = 0
			}
		} else {
			out[o] = sigmoid(sum)
		}
	}
}

// forward is the training-time pass: apply plus caching the
// pre-activations backward needs. Never called on the inference path.
func (d *dense) forward(in []float64, relu bool) []float64 {
	out, pre := d.apply(in, relu)
	d.preact = pre
	d.hidden = relu
	return out
}

// backward accumulates gradients for this layer given the incoming
// activations and the post-activation delta, returning the delta for the
// previous layer's output (nil when needPrev is false).
func (d *dense) backward(in, delta []float64, needPrev bool) []float64 {
	// delta already includes the activation derivative for the output
	// layer; hidden layers apply ReLU' here.
	local := delta
	if d.hidden {
		local = make([]float64, d.out)
		for o := range local {
			if d.preact[o] > 0 {
				local[o] = delta[o]
			}
		}
	}
	for o := 0; o < d.out; o++ {
		g := local[o]
		if g == 0 {
			continue
		}
		d.gb[o] += g
		row := d.gw[o*d.in : (o+1)*d.in]
		for i, x := range in {
			row[i] += g * x
		}
	}
	if !needPrev {
		return nil
	}
	prev := make([]float64, d.in)
	for o := 0; o < d.out; o++ {
		g := local[o]
		if g == 0 {
			continue
		}
		row := d.w[o*d.in : (o+1)*d.in]
		for i := range prev {
			prev[i] += g * row[i]
		}
	}
	return prev
}

func (d *dense) zeroGrads() {
	for i := range d.gw {
		d.gw[i] = 0
	}
	for i := range d.gb {
		d.gb[i] = 0
	}
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (d *dense) adamStep(lr, batch float64) {
	d.t++
	c1 := 1 - math.Pow(adamBeta1, d.t)
	c2 := 1 - math.Pow(adamBeta2, d.t)
	for i := range d.w {
		g := d.gw[i] / batch
		d.mw[i] = adamBeta1*d.mw[i] + (1-adamBeta1)*g
		d.vw[i] = adamBeta2*d.vw[i] + (1-adamBeta2)*g*g
		d.w[i] -= lr * (d.mw[i] / c1) / (math.Sqrt(d.vw[i]/c2) + adamEps)
	}
	for i := range d.b {
		g := d.gb[i] / batch
		d.mb[i] = adamBeta1*d.mb[i] + (1-adamBeta1)*g
		d.vb[i] = adamBeta2*d.vb[i] + (1-adamBeta2)*g*g
		d.b[i] -= lr * (d.mb[i] / c1) / (math.Sqrt(d.vb[i]/c2) + adamEps)
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
