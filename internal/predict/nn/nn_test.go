package nn

import (
	"math"
	"math/rand"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

func limits() config.Limits {
	return config.Limits{
		MaxCores: 61, MaxThreadsPerCore: 4, MaxSIMD: 16,
		MaxGlobalThreads: 8192, MaxLocalThreads: 256,
	}
}

// syntheticSamples builds a learnable mapping: the target accelerator
// flips on B1 > 0.5 and the normalized core count follows I1.
func syntheticSamples(n int, seed int64) []predict.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]predict.Sample, n)
	for i := range out {
		var f feature.Vector
		for j := range f {
			f[j] = float64(rng.Intn(11)) / 10
		}
		var target [config.NumVariables]float64
		if f[0] > 0.5 {
			target[0] = 0                // GPU
			target[18] = f[feature.NumB] // global threads follow I1
			target[19] = 0.5
		} else {
			target[0] = 1 // multicore
			target[1] = f[feature.NumB]
			target[2] = 1
		}
		out[i] = predict.Sample{Features: f, Target: target}
	}
	return out
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Hidden != 128 || o.Epochs != 90 || o.BatchSize != 32 {
		t.Fatalf("defaults %+v", o)
	}
	small := Options{Hidden: 16}.withDefaults()
	if small.Epochs != 60 {
		t.Fatalf("small net epochs %d", small.Epochs)
	}
}

func TestNameAndParamCount(t *testing.T) {
	n := New(limits(), Options{Hidden: 32})
	if n.Name() != "Deep.32" {
		t.Fatalf("name %q", n.Name())
	}
	if n.Hidden() != 32 {
		t.Fatal("hidden accessor")
	}
	// 17*32+32 + 32*32+32 + 32*20+20 parameters.
	want := 17*32 + 32 + 32*32 + 32 + 32*20 + 20
	if got := n.ParamCount(); got != want {
		t.Fatalf("params %d want %d", got, want)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	samples := syntheticSamples(400, 1)
	n := New(limits(), Options{Hidden: 32, Epochs: 30, Seed: 2})
	before := n.Loss(samples)
	if err := n.Train(samples); err != nil {
		t.Fatal(err)
	}
	after := n.Loss(samples)
	if after >= before/2 {
		t.Fatalf("training barely reduced loss: %v -> %v", before, after)
	}
}

func TestTrainEmptyErrors(t *testing.T) {
	if err := New(limits(), Options{}).Train(nil); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestLearnsAcceleratorRule(t *testing.T) {
	samples := syntheticSamples(600, 3)
	n := New(limits(), Options{Hidden: 32, Epochs: 40, Seed: 4})
	if err := n.Train(samples); err != nil {
		t.Fatal(err)
	}
	correct := 0
	holdout := syntheticSamples(200, 99)
	for _, s := range holdout {
		m := n.Predict(s.Features)
		wantGPU := s.Features[0] > 0.5
		if (m.Accelerator == config.GPU) == wantGPU {
			correct++
		}
	}
	if frac := float64(correct) / 200; frac < 0.9 {
		t.Fatalf("accelerator rule accuracy %.2f want >= 0.9", frac)
	}
}

func TestDeterministicTraining(t *testing.T) {
	samples := syntheticSamples(100, 5)
	a := New(limits(), Options{Hidden: 16, Epochs: 10, Seed: 7})
	b := New(limits(), Options{Hidden: 16, Epochs: 10, Seed: 7})
	if err := a.Train(samples); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(samples); err != nil {
		t.Fatal(err)
	}
	var f feature.Vector
	f[0] = 0.7
	if a.Predict(f) != b.Predict(f) {
		t.Fatal("same seed, different predictions")
	}
}

func TestPredictWithinLimits(t *testing.T) {
	l := limits()
	n := New(l, Options{Hidden: 16, Epochs: 5, Seed: 1})
	if err := n.Train(syntheticSamples(50, 2)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		var f feature.Vector
		for j := range f {
			f[j] = rng.Float64()
		}
		m := n.Predict(f)
		if m.Clamp(l) != m {
			t.Fatalf("prediction out of limits: %+v", m)
		}
		if m.Snapped(l) != m {
			t.Fatalf("prediction not snapped to grid: %+v", m)
		}
	}
}

// TestBackpropMatchesNumericalGradient validates the hand-written
// backward pass against central finite differences on a tiny network.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := &Network{
		opts:   Options{Hidden: 4}.withDefaults(),
		limits: limits(),
		layers: []*dense{
			newDense(3, 4, rng),
			newDense(4, 4, rng),
			newDense(4, 2, rng),
		},
	}
	in := []float64{0.3, -0.2, 0.8}
	target := []float64{0.9, 0.1}

	loss := func() float64 {
		act := in
		last := len(n.layers) - 1
		for i, l := range n.layers {
			act = l.forward(act, i < last)
		}
		sum := 0.0
		for j := range act {
			d := act[j] - target[j]
			sum += d * d
		}
		return sum / 2
	}

	n.zeroGrads()
	n.backward(in, target)

	const eps = 1e-6
	for li, layer := range n.layers {
		for wi := range layer.w {
			orig := layer.w[wi]
			layer.w[wi] = orig + eps
			up := loss()
			layer.w[wi] = orig - eps
			down := loss()
			layer.w[wi] = orig
			numeric := (up - down) / (2 * eps)
			analytic := layer.gw[wi]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: numeric %v analytic %v",
					li, wi, numeric, analytic)
			}
		}
		for bi := range layer.b {
			orig := layer.b[bi]
			layer.b[bi] = orig + eps
			up := loss()
			layer.b[bi] = orig - eps
			down := loss()
			layer.b[bi] = orig
			numeric := (up - down) / (2 * eps)
			analytic := layer.gb[bi]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d bias %d: numeric %v analytic %v",
					li, bi, numeric, analytic)
			}
		}
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0)=%v", s)
	}
	if s := sigmoid(40); s < 0.999 {
		t.Fatalf("sigmoid(40)=%v", s)
	}
	if s := sigmoid(-40); s > 0.001 {
		t.Fatalf("sigmoid(-40)=%v", s)
	}
}

func TestWiderNetworksFitBetter(t *testing.T) {
	samples := syntheticSamples(500, 17)
	lossFor := func(hidden int) float64 {
		n := New(limits(), Options{Hidden: hidden, Epochs: 30, Seed: 3})
		if err := n.Train(samples); err != nil {
			t.Fatal(err)
		}
		return n.Loss(samples)
	}
	l16, l128 := lossFor(16), lossFor(128)
	if l128 >= l16 {
		t.Fatalf("Deep.128 training loss %v not below Deep.16 %v", l128, l16)
	}
}
