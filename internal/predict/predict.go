// Package predict defines the predictor abstraction of the HeteroMap
// framework: a model that maps a 17-dimensional benchmark-input
// characterization (internal/feature) to a machine-choice vector
// (internal/config). Implementations live in the subpackages: dtree (the
// Section IV analytical decision tree), nn (the Section V-B deep
// learners), regress (the Section V-C linear and 7th-order regressions)
// and adaptive (the Rinnegan-style adaptive-library baseline of Table IV).
package predict

import (
	"heteromap/internal/config"
	"heteromap/internal/feature"
)

// Sample is one training example: a characterization paired with the
// normalized best-performing M vector found by the offline autotuner.
type Sample struct {
	Features feature.Vector
	Target   [config.NumVariables]float64
}

// Predictor maps characterizations to machine choices.
type Predictor interface {
	// Name identifies the predictor in Table IV rows.
	Name() string
	// Predict returns the machine configuration for one
	// benchmark-input characterization.
	Predict(f feature.Vector) config.M
}

// Trainable is implemented by predictors that learn from the offline
// database (everything except the hand-built decision tree).
type Trainable interface {
	Predictor
	// Train fits the model; it must be called before Predict.
	Train(samples []Sample) error
}

// Checked is implemented by predictors that can report prediction
// failure instead of silently sanitizing invalid raw model output
// (Predict must always return *some* M, so a network with NaN weights
// would otherwise launder garbage through the decode clamp). The
// fallback chain prefers PredictChecked when available.
type Checked interface {
	Predictor
	// PredictChecked returns the prediction, or an error when the raw
	// model output is unusable (non-finite, untrained, ...).
	PredictChecked(f feature.Vector) (config.M, error)
}

// BatchPredictor is implemented by predictors that can answer a whole
// micro-batch in one preallocated pass instead of per-request loops —
// the serving batcher routes deduplicated micro-batches through it.
type BatchPredictor interface {
	Checked
	// PredictBatchChecked fills dst[i] with the prediction for feats[i]
	// (dst must hold at least len(feats) rows). Every row must be
	// bit-identical to what PredictChecked would return for that row
	// alone — batching may change latency, never results; the serve
	// differential suite holds implementations to it. Any unanswerable
	// row fails the whole batch with an error rather than returning
	// partial results, and the caller re-derives per item.
	PredictBatchChecked(feats []feature.Vector, dst []config.M) error
}
