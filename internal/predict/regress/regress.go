// Package regress implements the paper's Section V-C regression
// predictors: a simple linear regression baseline and the 7th-order
// multiple non-linear regression (the XAPP-style model of Table IV). The
// paper fitted its regression in Matlab and ported it to C++; here the
// least-squares fit is solved directly via ridge-regularized normal
// equations in Go.
package regress

import (
	"errors"
	"fmt"
	"math"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

// Order7 is the paper's selected polynomial order: "a 7th order model
// fits well ... models with lower order do not have sufficient
// classification accuracy, and models with higher orders have higher
// performance overheads".
const Order7 = 7

// Model is a polynomial least-squares predictor. Order 1 is the Table IV
// "Linear Regression" row; Order7 with interactions is "Multi Regression".
type Model struct {
	limits       config.Limits
	order        int
	interactions bool
	ridge        float64
	// coef[j] holds the term coefficients for output variable j.
	coef  [][]float64
	terms int
	ready bool
}

var _ predict.Trainable = (*Model)(nil)

// NewLinear returns the first-order baseline.
func NewLinear(limits config.Limits) *Model {
	return &Model{limits: limits, order: 1, ridge: 1e-6}
}

// NewMulti returns the 7th-order multiple non-linear regression with
// pairwise and triple interaction terms ("higher orders and variable
// coefficients, which demand more multiplications, increasing
// complexity" — this is why its Table IV overhead tops the deep models).
func NewMulti(limits config.Limits) *Model {
	return &Model{limits: limits, order: Order7, interactions: true, ridge: 1e-3}
}

// NewWithOrder returns a polynomial model of arbitrary order (the
// learner-complexity ablation sweeps this).
func NewWithOrder(limits config.Limits, order int, interactions bool) *Model {
	if order < 1 {
		order = 1
	}
	return &Model{limits: limits, order: order, interactions: interactions, ridge: 1e-4}
}

// Name implements predict.Predictor.
func (m *Model) Name() string {
	if m.order == 1 && !m.interactions {
		return "Linear Regression"
	}
	if m.order == Order7 && m.interactions {
		return "Multi Regression"
	}
	return fmt.Sprintf("Regression(order=%d,inter=%v)", m.order, m.interactions)
}

// TermCount returns the size of the expanded feature basis.
func (m *Model) TermCount() int { return len(m.expand(feature.Vector{})) }

// expand maps a 17-feature vector to the polynomial basis: a constant,
// per-variable powers up to the order, and (for the multi model)
// pairwise and triple products.
func (m *Model) expand(f feature.Vector) []float64 {
	n := feature.NumFeatures
	out := make([]float64, 0, 1+n*m.order)
	out = append(out, 1)
	for i := 0; i < n; i++ {
		p := 1.0
		for d := 1; d <= m.order; d++ {
			p *= f[i]
			out = append(out, p)
		}
	}
	if m.interactions {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, f[i]*f[j])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for k := j + 1; k < n; k++ {
					out = append(out, f[i]*f[j]*f[k])
				}
			}
		}
	}
	return out
}

// Train implements predict.Trainable by solving the ridge-regularized
// normal equations (X'X + λI) c = X'y once and reusing the factorization
// for all NumVariables outputs.
func (m *Model) Train(samples []predict.Sample) error {
	if len(samples) == 0 {
		return errors.New("regress: no training samples")
	}
	t := len(m.expand(samples[0].Features))
	m.terms = t

	// Accumulate X'X and X'Y.
	xtx := make([]float64, t*t)
	xty := make([][]float64, config.NumVariables)
	for j := range xty {
		xty[j] = make([]float64, t)
	}
	row := make([]float64, t)
	for s := range samples {
		copy(row, m.expand(samples[s].Features))
		for i := 0; i < t; i++ {
			ri := row[i]
			if ri == 0 {
				continue
			}
			base := i * t
			for k := i; k < t; k++ {
				xtx[base+k] += ri * row[k]
			}
			for j := 0; j < config.NumVariables; j++ {
				xty[j][i] += ri * samples[s].Target[j]
			}
		}
	}
	// Mirror the upper triangle and add the ridge.
	for i := 0; i < t; i++ {
		for k := i + 1; k < t; k++ {
			xtx[k*t+i] = xtx[i*t+k]
		}
		xtx[i*t+i] += m.ridge * float64(len(samples))
	}

	chol, err := cholesky(xtx, t)
	if err != nil {
		return fmt.Errorf("regress: %w", err)
	}
	m.coef = make([][]float64, config.NumVariables)
	for j := 0; j < config.NumVariables; j++ {
		m.coef[j] = cholSolve(chol, t, xty[j])
	}
	m.ready = true
	return nil
}

// Predict implements predict.Predictor; the decoded configuration is
// snapped to the training grid like the other learned models.
func (m *Model) Predict(f feature.Vector) config.M {
	var v [config.NumVariables]float64
	if m.ready {
		basis := m.expand(f)
		for j := range v {
			var sum float64
			for i, c := range m.coef[j] {
				sum += c * basis[i]
			}
			v[j] = sum
		}
	}
	return config.FromNormalized(v, m.limits).Snapped(m.limits)
}

// cholesky factors a symmetric positive-definite matrix (row-major n×n)
// in place, returning the lower-triangular factor.
func cholesky(a []float64, n int) ([]float64, error) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("matrix not positive definite at %d (%g)", i, sum)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return l, nil
}

// cholSolve solves L L' x = b.
func cholSolve(l []float64, n int, b []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}
