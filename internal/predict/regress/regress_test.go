package regress

import (
	"math"
	"math/rand"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/predict"
)

func limits() config.Limits {
	return config.Limits{
		MaxCores: 61, MaxThreadsPerCore: 4, MaxSIMD: 16,
		MaxGlobalThreads: 8192, MaxLocalThreads: 256,
	}
}

func TestNames(t *testing.T) {
	if NewLinear(limits()).Name() != "Linear Regression" {
		t.Fatal("linear name")
	}
	if NewMulti(limits()).Name() != "Multi Regression" {
		t.Fatal("multi name")
	}
	if NewWithOrder(limits(), 3, false).Name() == "" {
		t.Fatal("custom name")
	}
	if NewWithOrder(limits(), 0, false).order != 1 {
		t.Fatal("order floor")
	}
}

func TestTermCounts(t *testing.T) {
	lin := NewLinear(limits())
	if got := lin.TermCount(); got != 1+feature.NumFeatures {
		t.Fatalf("linear terms %d", got)
	}
	multi := NewMulti(limits())
	n := feature.NumFeatures
	want := 1 + n*Order7 + n*(n-1)/2 + n*(n-1)*(n-2)/6
	if got := multi.TermCount(); got != want {
		t.Fatalf("multi terms %d want %d", got, want)
	}
	// The paper picks order 7 because "models with lower order do not
	// have sufficient classification accuracy, and models with higher
	// orders have higher performance overheads": term count must grow
	// with order.
	if NewWithOrder(limits(), 3, true).TermCount() >= multi.TermCount() {
		t.Fatal("order must increase complexity")
	}
}

// linearSamples constructs an exactly-linear mapping the linear model
// must recover to near machine precision.
func linearSamples(n int, seed int64) []predict.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]predict.Sample, n)
	for i := range out {
		var f feature.Vector
		for j := range f {
			f[j] = rng.Float64()
		}
		var target [config.NumVariables]float64
		target[0] = clamp01(0.2 + 0.5*f[0])
		target[1] = clamp01(0.1 + 0.3*f[1] + 0.4*f[16])
		target[5] = clamp01(f[2])
		out[i] = predict.Sample{Features: f, Target: target}
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestLinearRecoversLinearMapping(t *testing.T) {
	m := NewLinear(limits())
	samples := linearSamples(500, 1)
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	// Check raw regression outputs against the generating function on
	// held-out points.
	for _, s := range linearSamples(50, 2) {
		basis := m.expand(s.Features)
		for _, j := range []int{0, 1, 5} {
			var sum float64
			for i, c := range m.coef[j] {
				sum += c * basis[i]
			}
			// Tolerance bounded by the ridge regularizer's bias.
			if math.Abs(sum-s.Target[j]) > 1e-4 {
				t.Fatalf("output %d: predicted %v want %v", j, sum, s.Target[j])
			}
		}
	}
}

func TestMultiRecoversNonlinearMapping(t *testing.T) {
	m := NewWithOrder(limits(), 3, true)
	rng := rand.New(rand.NewSource(3))
	samples := make([]predict.Sample, 800)
	for i := range samples {
		var f feature.Vector
		for j := range f {
			f[j] = rng.Float64()
		}
		var target [config.NumVariables]float64
		target[0] = clamp01(f[0]*f[1] + 0.3*f[2]*f[2])
		samples[i] = predict.Sample{Features: f, Target: target}
	}
	if err := m.Train(samples); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, s := range samples[:100] {
		basis := m.expand(s.Features)
		var sum float64
		for i, c := range m.coef[0] {
			sum += c * basis[i]
		}
		if d := math.Abs(sum - s.Target[0]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("nonlinear fit error %v", worst)
	}
}

func TestLinearCannotFitNonlinear(t *testing.T) {
	// The Table IV gap between linear and multi regression exists
	// because the mapping is non-linear; verify the linear model's
	// residual stays clearly above the interaction model's.
	rng := rand.New(rand.NewSource(7))
	samples := make([]predict.Sample, 600)
	for i := range samples {
		var f feature.Vector
		for j := range f {
			f[j] = rng.Float64()
		}
		var target [config.NumVariables]float64
		x := f[0] - 0.5
		target[0] = clamp01(0.5 + 4*x*x*x - x) // cubic
		samples[i] = predict.Sample{Features: f, Target: target}
	}
	residual := func(m *Model) float64 {
		if err := m.Train(samples); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, s := range samples {
			basis := m.expand(s.Features)
			var p float64
			for i, c := range m.coef[0] {
				p += c * basis[i]
			}
			sum += (p - s.Target[0]) * (p - s.Target[0])
		}
		return sum / float64(len(samples))
	}
	lin := residual(NewLinear(limits()))
	multi := residual(NewWithOrder(limits(), 7, false))
	if multi >= lin/2 {
		t.Fatalf("order-7 residual %v not clearly below linear %v", multi, lin)
	}
}

func TestTrainEmptyErrors(t *testing.T) {
	if err := NewLinear(limits()).Train(nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestPredictBeforeTrainIsClamped(t *testing.T) {
	l := limits()
	m := NewLinear(l)
	var f feature.Vector
	got := m.Predict(f)
	if got.Clamp(l) != got {
		t.Fatal("untrained prediction must still be deployable")
	}
}

func TestPredictSnappedAndClamped(t *testing.T) {
	l := limits()
	m := NewLinear(l)
	if err := m.Train(linearSamples(200, 9)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ {
		var f feature.Vector
		for j := range f {
			f[j] = rng.Float64() * 2 // deliberately beyond training range
		}
		got := m.Predict(f)
		if got.Clamp(l) != got || got.Snapped(l) != got {
			t.Fatalf("prediction not deployable: %+v", got)
		}
	}
}

func TestCholeskySolvesKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
	a := []float64{4, 2, 2, 3}
	l, err := cholesky(append([]float64(nil), a...), 2)
	if err != nil {
		t.Fatal(err)
	}
	x := cholSolve(l, 2, []float64{10, 8})
	if math.Abs(x[0]-1.75) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Fatalf("solution %v", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // indefinite
	if _, err := cholesky(a, 2); err == nil {
		t.Fatal("expected not-positive-definite error")
	}
}

func TestDeterministicTraining(t *testing.T) {
	a, b := NewMulti(limits()), NewMulti(limits())
	samples := linearSamples(300, 11)
	if err := a.Train(samples); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(samples); err != nil {
		t.Fatal(err)
	}
	var f feature.Vector
	f[3] = 0.4
	if a.Predict(f) != b.Predict(f) {
		t.Fatal("training not deterministic")
	}
}
