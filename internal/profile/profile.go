// Package profile defines the instrumented work profile emitted by every
// graph benchmark in internal/algo and consumed by the accelerator cost
// model in internal/machine.
//
// The profile is the bridge that replaces the paper's real hardware: the
// benchmarks execute for real (so op counts, iteration counts, convergence
// behaviour and dependency-chain depths are measured, not assumed) and the
// machine model turns those counts into simulated time, energy and
// utilization for a given accelerator and M configuration. The phase
// taxonomy mirrors the paper's B1-B5 vertex-processing/scheduling
// variables, and the per-phase counters mirror B6-B13.
package profile

import (
	"fmt"
	"strings"
)

// PhaseKind classifies a parallel phase following the paper's B1-B5
// taxonomy.
type PhaseKind int

const (
	// VertexDivision (B1): outer loop data-parallel over vertices.
	VertexDivision PhaseKind = iota
	// Pareto (B2): statically growing vertex fronts.
	Pareto
	// ParetoDynamic (B3): dynamically growing fronts (e.g. BFS frontiers).
	ParetoDynamic
	// PushPop (B4): ordered queue/stack processing with dependencies.
	PushPop
	// Reduction (B5): reductions over vertices with synchronization.
	Reduction

	// NumPhaseKinds is the number of phase kinds.
	NumPhaseKinds = 5
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case VertexDivision:
		return "vertex-division"
	case Pareto:
		return "pareto"
	case ParetoDynamic:
		return "pareto-dynamic"
	case PushPop:
		return "push-pop"
	case Reduction:
		return "reduction"
	}
	return fmt.Sprintf("PhaseKind(%d)", int(k))
}

// Phase is the measured work of one parallel phase, aggregated over all
// iterations of the benchmark.
type Phase struct {
	Kind PhaseKind
	Name string

	// VertexOps and EdgeOps count outer-loop and inner-loop operations.
	VertexOps, EdgeOps int64

	// IndexedAccesses (B7) counts loop-index-addressed data accesses;
	// IndirectAccesses (B8) counts pointer-chased / data-dependent ones.
	IndexedAccesses, IndirectAccesses int64

	// Per-iteration data footprints in bytes, split by sharing class
	// (B9/B10/B11). These drive the cache model.
	ReadOnlyBytes, ReadWriteBytes, LocalBytes int64

	// FPOps (B6) and IntOps count arithmetic.
	FPOps, IntOps int64

	// Atomics (B12) counts contended atomic updates; PushPops counts
	// queue/stack operations.
	Atomics, PushPops int64

	// ChainLength is the longest dependency chain observed (serial depth,
	// e.g. BFS levels or stack depth); ParallelItems is the average
	// number of independent work items available per step of the chain.
	ChainLength   int64
	ParallelItems int64
}

// Ops returns the total operation count of the phase.
func (p *Phase) Ops() int64 {
	return p.VertexOps + p.EdgeOps + p.FPOps + p.IntOps + p.Atomics + p.PushPops
}

// Accesses returns total counted memory accesses.
func (p *Phase) Accesses() int64 { return p.IndexedAccesses + p.IndirectAccesses }

// IndirectFraction returns the fraction of accesses that are indirect.
func (p *Phase) IndirectFraction() float64 {
	a := p.Accesses()
	if a == 0 {
		return 0
	}
	return float64(p.IndirectAccesses) / float64(a)
}

// Work is the complete measured profile of one benchmark-input execution.
type Work struct {
	Benchmark string
	Graph     string

	Phases []Phase

	// Iterations is the number of outer convergence iterations executed.
	Iterations int64

	// DiameterBound marks algorithms whose iteration count tracks the
	// input's diameter (BFS levels, Bellman-Ford rounds, delta-stepping
	// buckets); fixed-iteration algorithms like PageRank leave it false
	// and are not chain-scaled to paper-scale diameters.
	DiameterBound bool

	// Barriers (B13) counts global barriers across the whole run.
	Barriers int64

	// Locality in [0,1] describes spatial locality of the input's edge
	// structure (see graph.LocalityScore); it refines the cache model.
	Locality float64

	// Skew is the coefficient of variation of the degree distribution;
	// it drives the load-imbalance model.
	Skew float64
}

// TotalOps sums operation counts over all phases.
func (w *Work) TotalOps() int64 {
	var t int64
	for i := range w.Phases {
		t += w.Phases[i].Ops()
	}
	return t
}

// TotalEdgeOps sums inner-loop edge operations over all phases.
func (w *Work) TotalEdgeOps() int64 {
	var t int64
	for i := range w.Phases {
		t += w.Phases[i].EdgeOps
	}
	return t
}

// TotalFPOps sums floating-point operations over all phases.
func (w *Work) TotalFPOps() int64 {
	var t int64
	for i := range w.Phases {
		t += w.Phases[i].FPOps
	}
	return t
}

// TotalAtomics sums atomic operations over all phases.
func (w *Work) TotalAtomics() int64 {
	var t int64
	for i := range w.Phases {
		t += w.Phases[i].Atomics
	}
	return t
}

// PhaseShare returns the fraction of total ops contributed by each phase
// kind; the shares sum to 1 for non-empty work. This is the measured
// analog of the paper's "a program may consist of 80% vertex division and
// a 20% reduction phase".
func (w *Work) PhaseShare() [NumPhaseKinds]float64 {
	var shares [NumPhaseKinds]float64
	total := w.TotalOps()
	if total == 0 {
		return shares
	}
	for i := range w.Phases {
		shares[w.Phases[i].Kind] += float64(w.Phases[i].Ops()) / float64(total)
	}
	return shares
}

// Scaled returns a copy of the work profile with op counts multiplied to
// paper-scale magnitudes: vertex-proportional counters by vertexScale,
// edge-proportional counters by edgeScale and dependency chains by
// chainScale. Iteration and barrier counts of iterative algorithms follow
// the chain scale because convergence tracks the diameter.
func (w *Work) Scaled(vertexScale, edgeScale, chainScale float64) *Work {
	if vertexScale <= 0 {
		vertexScale = 1
	}
	if edgeScale <= 0 {
		edgeScale = 1
	}
	if chainScale <= 0 {
		chainScale = 1
	}
	if !w.DiameterBound {
		chainScale = 1
	}
	out := &Work{
		Benchmark:     w.Benchmark,
		Graph:         w.Graph,
		Iterations:    scaleCount(w.Iterations, chainScale),
		DiameterBound: w.DiameterBound,
		Barriers:      scaleCount(w.Barriers, chainScale),
		Locality:      w.Locality,
		Skew:          w.Skew,
		Phases:        make([]Phase, len(w.Phases)),
	}
	for i, p := range w.Phases {
		out.Phases[i] = Phase{
			Kind:             p.Kind,
			Name:             p.Name,
			VertexOps:        scaleCount(p.VertexOps, vertexScale*chainScale),
			EdgeOps:          scaleCount(p.EdgeOps, edgeScale*chainScale),
			IndexedAccesses:  scaleCount(p.IndexedAccesses, edgeScale*chainScale),
			IndirectAccesses: scaleCount(p.IndirectAccesses, edgeScale*chainScale),
			ReadOnlyBytes:    scaleCount(p.ReadOnlyBytes, edgeScale),
			ReadWriteBytes:   scaleCount(p.ReadWriteBytes, vertexScale),
			LocalBytes:       scaleCount(p.LocalBytes, vertexScale),
			FPOps:            scaleCount(p.FPOps, edgeScale*chainScale),
			IntOps:           scaleCount(p.IntOps, edgeScale*chainScale),
			Atomics:          scaleCount(p.Atomics, vertexScale*chainScale),
			PushPops:         scaleCount(p.PushPops, vertexScale*chainScale),
			ChainLength:      scaleCount(p.ChainLength, chainScale),
			ParallelItems:    scaleCount(p.ParallelItems, vertexScale),
		}
	}
	return out
}

func scaleCount(c int64, f float64) int64 {
	if c == 0 {
		return 0
	}
	v := int64(float64(c) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// String renders a compact multi-line summary for logs and the CLI.
func (w *Work) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "work %s on %s: iters=%d barriers=%d locality=%.2f skew=%.2f\n",
		w.Benchmark, w.Graph, w.Iterations, w.Barriers, w.Locality, w.Skew)
	for i := range w.Phases {
		p := &w.Phases[i]
		fmt.Fprintf(&sb, "  phase %-16s kind=%-15s v=%d e=%d fp=%d atomics=%d pushpop=%d chain=%d\n",
			p.Name, p.Kind, p.VertexOps, p.EdgeOps, p.FPOps, p.Atomics, p.PushPops, p.ChainLength)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// Validate checks profile invariants the machine model relies on.
func (w *Work) Validate() error {
	if len(w.Phases) == 0 {
		return fmt.Errorf("profile: %s/%s has no phases", w.Benchmark, w.Graph)
	}
	for i := range w.Phases {
		p := &w.Phases[i]
		if p.Kind < 0 || p.Kind >= NumPhaseKinds {
			return fmt.Errorf("profile: phase %q has invalid kind %d", p.Name, p.Kind)
		}
		if p.VertexOps < 0 || p.EdgeOps < 0 || p.FPOps < 0 || p.Atomics < 0 ||
			p.PushPops < 0 || p.ChainLength < 0 || p.ParallelItems < 0 ||
			p.IndexedAccesses < 0 || p.IndirectAccesses < 0 ||
			p.ReadOnlyBytes < 0 || p.ReadWriteBytes < 0 || p.LocalBytes < 0 {
			return fmt.Errorf("profile: phase %q has negative counter", p.Name)
		}
	}
	if w.Iterations < 0 || w.Barriers < 0 {
		return fmt.Errorf("profile: negative iteration/barrier count")
	}
	if w.Locality < 0 || w.Locality > 1 {
		return fmt.Errorf("profile: locality %f outside [0,1]", w.Locality)
	}
	return nil
}
