package profile

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleWork() *Work {
	return &Work{
		Benchmark: "bench", Graph: "graph",
		Iterations: 10, DiameterBound: true, Barriers: 20,
		Locality: 0.5, Skew: 1.2,
		Phases: []Phase{
			{
				Kind: VertexDivision, Name: "main",
				VertexOps: 100, EdgeOps: 1000, IndexedAccesses: 2000,
				IndirectAccesses: 100, ReadOnlyBytes: 4096, ReadWriteBytes: 2048,
				LocalBytes: 512, FPOps: 300, IntOps: 700, Atomics: 50,
				ChainLength: 10, ParallelItems: 100,
			},
			{
				Kind: Reduction, Name: "reduce",
				VertexOps: 100, IntOps: 100, Atomics: 10,
				ReadWriteBytes: 256, ChainLength: 10, ParallelItems: 100,
			},
		},
	}
}

func TestPhaseKindString(t *testing.T) {
	names := map[PhaseKind]string{
		VertexDivision: "vertex-division",
		Pareto:         "pareto",
		ParetoDynamic:  "pareto-dynamic",
		PushPop:        "push-pop",
		Reduction:      "reduction",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d -> %q want %q", k, got, want)
		}
	}
	if got := PhaseKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string %q", got)
	}
}

func TestPhaseAggregates(t *testing.T) {
	p := &sampleWork().Phases[0]
	wantOps := int64(100 + 1000 + 300 + 700 + 50 + 0)
	if got := p.Ops(); got != wantOps {
		t.Fatalf("Ops=%d want %d", got, wantOps)
	}
	if got := p.Accesses(); got != 2100 {
		t.Fatalf("Accesses=%d", got)
	}
	if got := p.IndirectFraction(); math.Abs(got-100.0/2100) > 1e-12 {
		t.Fatalf("IndirectFraction=%v", got)
	}
	empty := &Phase{}
	if empty.IndirectFraction() != 0 {
		t.Fatal("empty phase indirect fraction")
	}
}

func TestWorkTotals(t *testing.T) {
	w := sampleWork()
	if got := w.TotalEdgeOps(); got != 1000 {
		t.Fatalf("TotalEdgeOps=%d", got)
	}
	if got := w.TotalFPOps(); got != 300 {
		t.Fatalf("TotalFPOps=%d", got)
	}
	if got := w.TotalAtomics(); got != 60 {
		t.Fatalf("TotalAtomics=%d", got)
	}
	if got := w.TotalOps(); got != w.Phases[0].Ops()+w.Phases[1].Ops() {
		t.Fatalf("TotalOps=%d", got)
	}
}

func TestPhaseShareSumsToOne(t *testing.T) {
	w := sampleWork()
	shares := w.PhaseShare()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("phase shares sum to %v", sum)
	}
	if shares[VertexDivision] <= shares[Reduction] {
		t.Fatal("vertex division should dominate the sample")
	}
	empty := &Work{}
	if s := empty.PhaseShare(); s != [NumPhaseKinds]float64{} {
		t.Fatal("empty work should have zero shares")
	}
}

func TestScaledMultipliesCounters(t *testing.T) {
	w := sampleWork()
	s := w.Scaled(10, 100, 2)
	p, sp := &w.Phases[0], &s.Phases[0]
	if sp.VertexOps != p.VertexOps*10*2 {
		t.Fatalf("vertex ops scaled %d", sp.VertexOps)
	}
	if sp.EdgeOps != p.EdgeOps*100*2 {
		t.Fatalf("edge ops scaled %d", sp.EdgeOps)
	}
	if sp.ReadWriteBytes != p.ReadWriteBytes*10 {
		t.Fatalf("rw bytes scaled %d (vertex-proportional, not chain)", sp.ReadWriteBytes)
	}
	if sp.ReadOnlyBytes != p.ReadOnlyBytes*100 {
		t.Fatalf("ro bytes scaled %d", sp.ReadOnlyBytes)
	}
	if sp.ChainLength != p.ChainLength*2 {
		t.Fatalf("chain scaled %d", sp.ChainLength)
	}
	if s.Iterations != w.Iterations*2 || s.Barriers != w.Barriers*2 {
		t.Fatalf("iterations/barriers scaled %d/%d", s.Iterations, s.Barriers)
	}
	if s.Locality != w.Locality || s.Skew != w.Skew {
		t.Fatal("locality/skew must not scale")
	}
}

func TestScaledRespectsDiameterBound(t *testing.T) {
	w := sampleWork()
	w.DiameterBound = false
	s := w.Scaled(10, 100, 7)
	if s.Iterations != w.Iterations {
		t.Fatalf("fixed-iteration work scaled iterations to %d", s.Iterations)
	}
	if s.Phases[0].ChainLength != w.Phases[0].ChainLength {
		t.Fatalf("fixed-iteration work scaled chain to %d", s.Phases[0].ChainLength)
	}
	// Edge scale still applies.
	if s.Phases[0].EdgeOps != w.Phases[0].EdgeOps*100 {
		t.Fatalf("edge ops %d", s.Phases[0].EdgeOps)
	}
}

func TestScaledDegenerateFactors(t *testing.T) {
	w := sampleWork()
	s := w.Scaled(0, -3, 0)
	if s.Phases[0].EdgeOps != w.Phases[0].EdgeOps {
		t.Fatal("non-positive factors must behave as 1")
	}
	// Zero counters stay zero; positive counters stay >= 1.
	if s.Phases[1].EdgeOps != 0 {
		t.Fatal("zero counter scaled to non-zero")
	}
}

func TestScaledNeverNegativeProperty(t *testing.T) {
	f := func(vs, es, cs float64) bool {
		s := sampleWork().Scaled(math.Abs(vs), math.Abs(es), math.Abs(cs))
		for i := range s.Phases {
			p := &s.Phases[i]
			if p.VertexOps < 0 || p.EdgeOps < 0 || p.FPOps < 0 || p.Atomics < 0 {
				return false
			}
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	w := sampleWork()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Work)
	}{
		{"no phases", func(w *Work) { w.Phases = nil }},
		{"bad kind", func(w *Work) { w.Phases[0].Kind = 99 }},
		{"negative counter", func(w *Work) { w.Phases[0].EdgeOps = -1 }},
		{"negative iterations", func(w *Work) { w.Iterations = -1 }},
		{"locality range", func(w *Work) { w.Locality = 1.5 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := sampleWork()
			tc.mutate(w)
			if err := w.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestString(t *testing.T) {
	s := sampleWork().String()
	for _, want := range []string{"bench", "graph", "main", "reduce"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
