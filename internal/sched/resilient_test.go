package sched

import (
	"math"
	"testing"
	"testing/quick"

	"heteromap/internal/config"
	"heteromap/internal/fault"
	"heteromap/internal/feature"
)

// nanPredictor simulates a broken trained model inside a batch.
type nanPredictor struct{}

func (nanPredictor) Name() string { return "Deep.128" }
func (nanPredictor) Predict(feature.Vector) config.M {
	return config.M{Accelerator: config.GPU, PlaceCore: math.NaN()}
}

func TestEmptyBatchAllStrategies(t *testing.T) {
	pair, tree, _ := setup(t)
	plans := Compare(pair, tree, nil)
	plans = append(plans, AssignResilient(pair, tree, nil, nil, fault.DefaultPolicy()))
	for _, plan := range plans {
		if plan.Jobs() != 0 {
			t.Fatalf("%s: empty batch has %d jobs", plan.Strategy, plan.Jobs())
		}
		if plan.Makespan != 0 || plan.GPUBusy != 0 || plan.MCBusy != 0 {
			t.Fatalf("%s: empty batch busy: %+v", plan.Strategy, plan)
		}
		if plan.Balance() != 1 {
			t.Fatalf("%s: empty batch balance %v", plan.Strategy, plan.Balance())
		}
	}
}

// planNames collects the multiset of job names in a plan.
func planNames(p Plan) map[string]int {
	names := map[string]int{}
	for _, j := range append(append([]Job{}, p.GPUJobs...), p.MCJobs...) {
		names[j.Workload.Name()]++
	}
	return names
}

func TestResilientPlanProperties(t *testing.T) {
	// Property: for any batch subset and any fault seed, the resilient
	// plan preserves the job set exactly and keeps the makespan
	// invariant Makespan == max(GPUBusy, MCBusy).
	pair, tree, ws := setup(t)
	pol := fault.DefaultPolicy()
	prop := func(mask uint16, seed uint8) bool {
		sub := ws[:0:0]
		for i := 0; i < 16 && i < len(ws); i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, ws[i])
			}
		}
		inj := fault.NewChaosInjector(int64(seed), 0.2)
		plan := AssignResilient(pair, tree, sub, inj, pol)
		if plan.Jobs() != len(sub) {
			return false
		}
		names := planNames(plan)
		for _, w := range sub {
			if names[w.Name()] != 1 {
				return false
			}
		}
		want := plan.GPUBusy
		if plan.MCBusy > want {
			want = plan.MCBusy
		}
		return plan.Makespan == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestResilientFaultFreeMatchesPredicted(t *testing.T) {
	pair, tree, ws := setup(t)
	base := AssignPredicted(pair, tree, ws)
	res := AssignResilient(pair, tree, ws, nil, fault.DefaultPolicy())
	if res.Retries != 0 || res.Failovers != 0 || res.Incomplete != 0 || res.FaultSeconds != 0 {
		t.Fatalf("fault-free resilient plan has fault accounting: %+v", res)
	}
	if math.Abs(res.Makespan-base.Makespan) > base.Makespan*1e-12 {
		t.Fatalf("fault-free resilient makespan %v, predicted %v", res.Makespan, base.Makespan)
	}
	if len(res.GPUJobs) != len(base.GPUJobs) || len(res.MCJobs) != len(base.MCJobs) {
		t.Fatal("fault-free resilient plan moved jobs")
	}
}

func TestChaosSweepMakespanMonotone(t *testing.T) {
	// The acceptance sweep: same seed, fault rates 0, 0.1, 0.3. No job
	// may be lost, and the makespan must be non-decreasing in the rate.
	// The breaker is effectively disabled (huge threshold) because a
	// breaker that opens lets later jobs skip the broken side's charges,
	// which can legitimately shorten the plan.
	pair, tree, ws := setup(t)
	pol := fault.DefaultPolicy()
	pol.BreakerThreshold = 1 << 30
	const seed = 42
	var prev Plan
	for i, rate := range []float64{0, 0.1, 0.3} {
		var inj *fault.Injector
		if rate > 0 {
			inj = fault.NewChaosInjector(seed, rate)
		}
		plan := AssignResilient(pair, tree, ws, inj, pol)
		if plan.Jobs() != len(ws) {
			t.Fatalf("rate %v: %d jobs, want %d", rate, plan.Jobs(), len(ws))
		}
		if plan.Incomplete != 0 {
			t.Fatalf("rate %v: %d jobs lost", rate, plan.Incomplete)
		}
		if i > 0 && plan.Makespan < prev.Makespan {
			t.Fatalf("makespan decreased with fault rate: %v@%v < %v",
				plan.Makespan, rate, prev.Makespan)
		}
		if rate == 0 && (plan.Retries != 0 || plan.FaultSeconds != 0) {
			t.Fatalf("rate 0 charged faults: %+v", plan)
		}
		prev = plan
	}
	if prev.Retries == 0 {
		t.Fatal("rate 0.3 batch of 81 jobs produced no retries")
	}
	if prev.FaultSeconds <= 0 {
		t.Fatal("retries with no fault time accounted")
	}
}

func TestResilientFailsOverFromDeadGPU(t *testing.T) {
	// A persistently dead GPU (rate ~1) with a low breaker threshold:
	// early jobs exhaust retries and migrate; the breaker then opens so
	// later GPU-predicted jobs skip straight to the multicore. Nothing
	// is lost and the GPU ends up idle apart from the early attempts.
	pair, tree, ws := setup(t)
	inj := fault.NewInjector(7).SetProfile(config.GPU, fault.Profile{TransientRate: 1})
	pol := fault.DefaultPolicy()
	pol.BreakerThreshold = 2
	plan := AssignResilient(pair, tree, ws, inj, pol)
	if plan.Incomplete != 0 {
		t.Fatalf("healthy multicore lost %d jobs", plan.Incomplete)
	}
	if len(plan.GPUJobs) != 0 {
		t.Fatalf("%d jobs completed on a 100%%-failing GPU", len(plan.GPUJobs))
	}
	if plan.Failovers == 0 {
		t.Fatal("no failovers recorded")
	}
	// The breaker must have cut GPU attempts: far fewer retries than
	// every GPU-predicted job exhausting its full budget.
	base := AssignPredicted(pair, tree, ws)
	gpuPredicted := len(base.GPUJobs)
	if gpuPredicted == 0 {
		t.Skip("predictor sent nothing to the GPU")
	}
	if plan.Retries >= gpuPredicted*pol.MaxRetries {
		t.Fatalf("breaker never engaged: %d retries for %d GPU-predicted jobs",
			plan.Retries, gpuPredicted)
	}
	for _, j := range plan.MCJobs {
		if j.Failed {
			t.Fatalf("job %s marked failed in a healthy-MC batch", j.Workload.Name())
		}
	}
}

func TestResilientSurvivesBrokenPredictor(t *testing.T) {
	// A NaN-emitting predictor must not crash or skew the batch: the
	// chain degrades every prediction to the deployable default.
	pair, _, ws := setup(t)
	plan := AssignResilient(pair, nanPredictor{}, ws[:9], nil, fault.DefaultPolicy())
	if plan.Jobs() != 9 || plan.Incomplete != 0 {
		t.Fatalf("broken predictor lost jobs: %+v", plan)
	}
	for _, j := range append(append([]Job{}, plan.GPUJobs...), plan.MCJobs...) {
		if err := j.M.Validate(pair.Limits()); err != nil {
			t.Fatalf("job %s deployed invalid M: %v", j.Workload.Name(), err)
		}
	}
}
