// Package sched operates the multi-accelerator system as the paper's
// Section II deployment describes: a stream of graph benchmark-input
// combinations is "loaded and executed with the appropriate architectural
// choices for individual accelerators" — both accelerators work
// concurrently, each draining its assigned jobs. The package turns
// HeteroMap's per-combination predictions into batch plans and compares
// their makespan against single-accelerator and load-balanced baselines.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/fault"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
)

// Job is one planned execution.
type Job struct {
	Workload *core.Workload
	M        config.M
	Seconds  float64

	// Resilient-plan bookkeeping (zero for fault-free strategies):
	// Attempts counts execution attempts, FailedOver reports a migration
	// to the other accelerator, Failed marks a job every attempt lost.
	Attempts   int
	FailedOver bool
	Failed     bool
}

// Plan is a complete batch assignment.
type Plan struct {
	Strategy string
	GPUJobs  []Job
	MCJobs   []Job
	// GPUBusy and MCBusy are the accelerators' total busy times; the
	// Makespan is the larger of the two (both run concurrently).
	GPUBusy, MCBusy float64
	Makespan        float64

	// Resilience accounting (populated by AssignResilient): Retries and
	// Failovers total across the batch, Incomplete counts jobs that
	// failed on both accelerators, and FaultSeconds is the busy time
	// charged beyond the final attempts (failed attempts, backoff waits
	// and migrations) — already included in the busy totals above.
	Retries      int
	Failovers    int
	Incomplete   int
	FaultSeconds float64
}

// Jobs returns the total job count.
func (p Plan) Jobs() int { return len(p.GPUJobs) + len(p.MCJobs) }

// Balance returns min(busy)/max(busy) in [0,1]; 1 is a perfectly
// balanced system, 0 an idle accelerator.
func (p Plan) Balance() float64 {
	lo, hi := p.GPUBusy, p.MCBusy
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 1
	}
	return lo / hi
}

// String summarizes the plan.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d jobs -> GPU %d (%.4gs busy), MC %d (%.4gs busy); makespan %.4gs (balance %.2f)",
		p.Strategy, p.Jobs(), len(p.GPUJobs), p.GPUBusy, len(p.MCJobs), p.MCBusy,
		p.Makespan, p.Balance())
	if p.Retries > 0 || p.Failovers > 0 || p.Incomplete > 0 {
		fmt.Fprintf(&sb, "; faults: %d retries, %d failovers, %d incomplete, %.4gs lost",
			p.Retries, p.Failovers, p.Incomplete, p.FaultSeconds)
	}
	return sb.String()
}

func finish(p Plan) Plan {
	for _, j := range p.GPUJobs {
		p.GPUBusy += j.Seconds
	}
	for _, j := range p.MCJobs {
		p.MCBusy += j.Seconds
	}
	p.Makespan = p.GPUBusy
	if p.MCBusy > p.Makespan {
		p.Makespan = p.MCBusy
	}
	return p
}

// sideConfigs derives deployable per-accelerator configurations from one
// predicted M — the same side-retargeting rule failover uses.
func sideConfigs(limits config.Limits, m config.M) (gpuM, mcM config.M) {
	return m.ForceAccelerator(config.GPU, limits), m.ForceAccelerator(config.Multicore, limits)
}

// AssignPredicted builds the HeteroMap plan: every job goes to the
// accelerator its prediction names, deployed with the predicted knobs.
func AssignPredicted(pair machine.Pair, p predict.Predictor, ws []*core.Workload) Plan {
	plan := Plan{Strategy: "HeteroMap"}
	for _, w := range ws {
		m := p.Predict(w.Features)
		sec := pair.Select(m.Accelerator).Evaluate(w.Job, m).Seconds
		job := Job{Workload: w, M: m, Seconds: sec}
		if m.Accelerator == config.GPU {
			plan.GPUJobs = append(plan.GPUJobs, job)
		} else {
			plan.MCJobs = append(plan.MCJobs, job)
		}
	}
	return finish(plan)
}

// AssignSingle sends every job to one accelerator with the predictor's
// knobs forced onto it — the single-accelerator operational baseline.
func AssignSingle(pair machine.Pair, p predict.Predictor, ws []*core.Workload, accel config.Accel) Plan {
	plan := Plan{Strategy: accel.String() + "-only"}
	limits := pair.Limits()
	for _, w := range ws {
		gpuM, mcM := sideConfigs(limits, p.Predict(w.Features))
		m := gpuM
		if accel == config.Multicore {
			m = mcM
		}
		sec := pair.Select(accel).Evaluate(w.Job, m).Seconds
		job := Job{Workload: w, M: m, Seconds: sec}
		if accel == config.GPU {
			plan.GPUJobs = append(plan.GPUJobs, job)
		} else {
			plan.MCJobs = append(plan.MCJobs, job)
		}
	}
	return finish(plan)
}

// AssignBalanced builds the longest-processing-time-first load balancing
// plan: jobs sorted by their better-side time, each placed to minimize
// the finishing time of the accelerator it lands on (accounting for how
// much slower its worse side would run it). It treats throughput, not
// per-job latency, as the objective — the natural competitor for batch
// operation.
func AssignBalanced(pair machine.Pair, p predict.Predictor, ws []*core.Workload) Plan {
	limits := pair.Limits()
	type timing struct {
		w        *core.Workload
		gpuM     config.M
		mcM      config.M
		gpuT     float64
		mcT      float64
		bestTime float64
	}
	timings := make([]timing, 0, len(ws))
	for _, w := range ws {
		gpuM, mcM := sideConfigs(limits, p.Predict(w.Features))
		tg := pair.GPU.Evaluate(w.Job, gpuM).Seconds
		tm := pair.Multicore.Evaluate(w.Job, mcM).Seconds
		best := tg
		if tm < best {
			best = tm
		}
		timings = append(timings, timing{w: w, gpuM: gpuM, mcM: mcM, gpuT: tg, mcT: tm, bestTime: best})
	}
	sort.SliceStable(timings, func(i, j int) bool { return timings[i].bestTime > timings[j].bestTime })

	plan := Plan{Strategy: "LPT-balanced"}
	var gpuBusy, mcBusy float64
	for _, t := range timings {
		// Place on the side that finishes this job earliest.
		if gpuBusy+t.gpuT <= mcBusy+t.mcT {
			plan.GPUJobs = append(plan.GPUJobs, Job{Workload: t.w, M: t.gpuM, Seconds: t.gpuT})
			gpuBusy += t.gpuT
		} else {
			plan.MCJobs = append(plan.MCJobs, Job{Workload: t.w, M: t.mcM, Seconds: t.mcT})
			mcBusy += t.mcT
		}
	}
	return finish(plan)
}

// AssignResilient builds the failure-aware HeteroMap plan: every job is
// predicted through a fallback chain (so a broken predictor degrades
// instead of crashing the batch), dispatched to its predicted
// accelerator, retried with capped exponential backoff under the
// injector's faults, and failed over to the other accelerator when
// retries are exhausted or the side's circuit breaker opens. Accelerator
// health persists across the batch: a side that keeps failing is skipped
// by later jobs until its breaker's cooldown admits a probe. Every failed
// attempt, backoff wait and migration is charged to the side that
// incurred it, so the makespan honestly reflects the faults (and is
// non-decreasing in the fault rate when breakers stay closed).
func AssignResilient(pair machine.Pair, p predict.Predictor, ws []*core.Workload, inj *fault.Injector, pol fault.Policy) Plan {
	limits := pair.Limits()
	chain := fault.NewChain(limits, p)
	brs := fault.NewBreakers(pol)
	plan := Plan{Strategy: "HeteroMap-resilient"}
	for _, w := range ws {
		sel := chain.Select(w.Features)
		res := fault.Execute(pair, limits, sel.M, w.Job, w.Name(), inj, pol, brs)
		job := Job{
			Workload: w, M: res.FinalM, Seconds: res.Report.Seconds,
			Attempts: res.Attempts, FailedOver: res.FailedOver, Failed: !res.Completed,
		}
		if res.Side == config.GPU {
			plan.GPUJobs = append(plan.GPUJobs, job)
		} else {
			plan.MCJobs = append(plan.MCJobs, job)
		}
		plan.GPUBusy += res.GPUSeconds
		plan.MCBusy += res.MCSeconds
		plan.Retries += res.Retries
		if res.FailedOver {
			plan.Failovers++
		}
		if !res.Completed {
			plan.Incomplete++
		}
		plan.FaultSeconds += res.LostSeconds()
	}
	plan.Makespan = plan.GPUBusy
	if plan.MCBusy > plan.Makespan {
		plan.Makespan = plan.MCBusy
	}
	return plan
}

// Compare runs all strategies over a batch and returns the plans in a
// fixed order: HeteroMap, LPT-balanced, GPU-only, Multicore-only.
func Compare(pair machine.Pair, p predict.Predictor, ws []*core.Workload) []Plan {
	return []Plan{
		AssignPredicted(pair, p, ws),
		AssignBalanced(pair, p, ws),
		AssignSingle(pair, p, ws, config.GPU),
		AssignSingle(pair, p, ws, config.Multicore),
	}
}
