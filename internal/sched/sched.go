// Package sched operates the multi-accelerator system as the paper's
// Section II deployment describes: a stream of graph benchmark-input
// combinations is "loaded and executed with the appropriate architectural
// choices for individual accelerators" — both accelerators work
// concurrently, each draining its assigned jobs. The package turns
// HeteroMap's per-combination predictions into batch plans and compares
// their makespan against single-accelerator and load-balanced baselines.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
)

// Job is one planned execution.
type Job struct {
	Workload *core.Workload
	M        config.M
	Seconds  float64
}

// Plan is a complete batch assignment.
type Plan struct {
	Strategy string
	GPUJobs  []Job
	MCJobs   []Job
	// GPUBusy and MCBusy are the accelerators' total busy times; the
	// Makespan is the larger of the two (both run concurrently).
	GPUBusy, MCBusy float64
	Makespan        float64
}

// Jobs returns the total job count.
func (p Plan) Jobs() int { return len(p.GPUJobs) + len(p.MCJobs) }

// Balance returns min(busy)/max(busy) in [0,1]; 1 is a perfectly
// balanced system, 0 an idle accelerator.
func (p Plan) Balance() float64 {
	lo, hi := p.GPUBusy, p.MCBusy
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 1
	}
	return lo / hi
}

// String summarizes the plan.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d jobs -> GPU %d (%.4gs busy), MC %d (%.4gs busy); makespan %.4gs (balance %.2f)",
		p.Strategy, p.Jobs(), len(p.GPUJobs), p.GPUBusy, len(p.MCJobs), p.MCBusy,
		p.Makespan, p.Balance())
	return sb.String()
}

func finish(p Plan) Plan {
	for _, j := range p.GPUJobs {
		p.GPUBusy += j.Seconds
	}
	for _, j := range p.MCJobs {
		p.MCBusy += j.Seconds
	}
	p.Makespan = p.GPUBusy
	if p.MCBusy > p.Makespan {
		p.Makespan = p.MCBusy
	}
	return p
}

// sideConfigs derives deployable per-accelerator configurations from one
// predicted M (the same completion trick core.System.PlanPhased uses).
func sideConfigs(limits config.Limits, m config.M) (gpuM, mcM config.M) {
	gpuM, mcM = m, m
	gpuM.Accelerator = config.GPU
	mcM.Accelerator = config.Multicore
	if m.Accelerator == config.GPU {
		d := config.DefaultMulticore(limits)
		mcM.Cores, mcM.ThreadsPerCore, mcM.SIMDWidth = d.Cores, d.ThreadsPerCore, d.SIMDWidth
	} else {
		d := config.DefaultGPU(limits)
		gpuM.GlobalThreads, gpuM.LocalThreads = d.GlobalThreads, d.LocalThreads
	}
	return gpuM.Clamp(limits), mcM.Clamp(limits)
}

// AssignPredicted builds the HeteroMap plan: every job goes to the
// accelerator its prediction names, deployed with the predicted knobs.
func AssignPredicted(pair machine.Pair, p predict.Predictor, ws []*core.Workload) Plan {
	plan := Plan{Strategy: "HeteroMap"}
	for _, w := range ws {
		m := p.Predict(w.Features)
		sec := pair.Select(m.Accelerator).Evaluate(w.Job, m).Seconds
		job := Job{Workload: w, M: m, Seconds: sec}
		if m.Accelerator == config.GPU {
			plan.GPUJobs = append(plan.GPUJobs, job)
		} else {
			plan.MCJobs = append(plan.MCJobs, job)
		}
	}
	return finish(plan)
}

// AssignSingle sends every job to one accelerator with the predictor's
// knobs forced onto it — the single-accelerator operational baseline.
func AssignSingle(pair machine.Pair, p predict.Predictor, ws []*core.Workload, accel config.Accel) Plan {
	plan := Plan{Strategy: accel.String() + "-only"}
	limits := pair.Limits()
	for _, w := range ws {
		gpuM, mcM := sideConfigs(limits, p.Predict(w.Features))
		m := gpuM
		if accel == config.Multicore {
			m = mcM
		}
		sec := pair.Select(accel).Evaluate(w.Job, m).Seconds
		job := Job{Workload: w, M: m, Seconds: sec}
		if accel == config.GPU {
			plan.GPUJobs = append(plan.GPUJobs, job)
		} else {
			plan.MCJobs = append(plan.MCJobs, job)
		}
	}
	return finish(plan)
}

// AssignBalanced builds the longest-processing-time-first load balancing
// plan: jobs sorted by their better-side time, each placed to minimize
// the finishing time of the accelerator it lands on (accounting for how
// much slower its worse side would run it). It treats throughput, not
// per-job latency, as the objective — the natural competitor for batch
// operation.
func AssignBalanced(pair machine.Pair, p predict.Predictor, ws []*core.Workload) Plan {
	limits := pair.Limits()
	type timing struct {
		w        *core.Workload
		gpuM     config.M
		mcM      config.M
		gpuT     float64
		mcT      float64
		bestTime float64
	}
	timings := make([]timing, 0, len(ws))
	for _, w := range ws {
		gpuM, mcM := sideConfigs(limits, p.Predict(w.Features))
		tg := pair.GPU.Evaluate(w.Job, gpuM).Seconds
		tm := pair.Multicore.Evaluate(w.Job, mcM).Seconds
		best := tg
		if tm < best {
			best = tm
		}
		timings = append(timings, timing{w: w, gpuM: gpuM, mcM: mcM, gpuT: tg, mcT: tm, bestTime: best})
	}
	sort.SliceStable(timings, func(i, j int) bool { return timings[i].bestTime > timings[j].bestTime })

	plan := Plan{Strategy: "LPT-balanced"}
	var gpuBusy, mcBusy float64
	for _, t := range timings {
		// Place on the side that finishes this job earliest.
		if gpuBusy+t.gpuT <= mcBusy+t.mcT {
			plan.GPUJobs = append(plan.GPUJobs, Job{Workload: t.w, M: t.gpuM, Seconds: t.gpuT})
			gpuBusy += t.gpuT
		} else {
			plan.MCJobs = append(plan.MCJobs, Job{Workload: t.w, M: t.mcM, Seconds: t.mcT})
			mcBusy += t.mcT
		}
	}
	return finish(plan)
}

// Compare runs all strategies over a batch and returns the plans in a
// fixed order: HeteroMap, LPT-balanced, GPU-only, Multicore-only.
func Compare(pair machine.Pair, p predict.Predictor, ws []*core.Workload) []Plan {
	return []Plan{
		AssignPredicted(pair, p, ws),
		AssignBalanced(pair, p, ws),
		AssignSingle(pair, p, ws, config.GPU),
		AssignSingle(pair, p, ws, config.Multicore),
	}
}
