package sched

import (
	"strings"
	"sync"
	"testing"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
)

var (
	wsOnce sync.Once
	wsAll  []*core.Workload
	wsErr  error
)

func workloads(t *testing.T) []*core.Workload {
	t.Helper()
	wsOnce.Do(func() {
		wsAll, wsErr = core.CharacterizeAll(algo.All(), gen.TableICached(gen.Small))
	})
	if wsErr != nil {
		t.Fatal(wsErr)
	}
	return wsAll
}

func setup(t *testing.T) (machine.Pair, *dtree.Tree, []*core.Workload) {
	pair := machine.PrimaryPair()
	return pair, dtree.New(pair.Limits()), workloads(t)
}

func TestPlansCoverEveryJobOnce(t *testing.T) {
	pair, tree, ws := setup(t)
	for _, plan := range Compare(pair, tree, ws) {
		if plan.Jobs() != len(ws) {
			t.Fatalf("%s: %d jobs want %d", plan.Strategy, plan.Jobs(), len(ws))
		}
		seen := map[string]bool{}
		for _, j := range append(append([]Job{}, plan.GPUJobs...), plan.MCJobs...) {
			name := j.Workload.Name()
			if seen[name] {
				t.Fatalf("%s: job %s assigned twice", plan.Strategy, name)
			}
			seen[name] = true
			if j.Seconds <= 0 {
				t.Fatalf("%s: job %s has no duration", plan.Strategy, name)
			}
		}
	}
}

func TestMakespanMath(t *testing.T) {
	pair, tree, ws := setup(t)
	plan := AssignPredicted(pair, tree, ws)
	var gpu, mc float64
	for _, j := range plan.GPUJobs {
		gpu += j.Seconds
	}
	for _, j := range plan.MCJobs {
		mc += j.Seconds
	}
	if plan.GPUBusy != gpu || plan.MCBusy != mc {
		t.Fatal("busy sums wrong")
	}
	want := gpu
	if mc > want {
		want = mc
	}
	if plan.Makespan != want {
		t.Fatalf("makespan %v want %v", plan.Makespan, want)
	}
	if b := plan.Balance(); b < 0 || b > 1 {
		t.Fatalf("balance %v", b)
	}
}

func TestSinglePlansUseOneAccelerator(t *testing.T) {
	pair, tree, ws := setup(t)
	gpu := AssignSingle(pair, tree, ws, config.GPU)
	if len(gpu.MCJobs) != 0 || len(gpu.GPUJobs) != len(ws) {
		t.Fatal("GPU-only plan leaked jobs")
	}
	mc := AssignSingle(pair, tree, ws, config.Multicore)
	if len(mc.GPUJobs) != 0 || len(mc.MCJobs) != len(ws) {
		t.Fatal("MC-only plan leaked jobs")
	}
	// A single accelerator's makespan is its busy time.
	if gpu.Makespan != gpu.GPUBusy || mc.Makespan != mc.MCBusy {
		t.Fatal("single-accelerator makespan")
	}
}

func TestConcurrencyBeatsSingleAccelerators(t *testing.T) {
	// Using both accelerators at once must beat each single-accelerator
	// makespan: that is the operational premise of the whole paper.
	pair, tree, ws := setup(t)
	plans := Compare(pair, tree, ws)
	hm, lpt, gpuOnly, mcOnly := plans[0], plans[1], plans[2], plans[3]
	for _, single := range []Plan{gpuOnly, mcOnly} {
		if hm.Makespan >= single.Makespan {
			t.Fatalf("HeteroMap makespan %v not below %s %v",
				hm.Makespan, single.Strategy, single.Makespan)
		}
		if lpt.Makespan >= single.Makespan {
			t.Fatalf("LPT makespan %v not below %s %v",
				lpt.Makespan, single.Strategy, single.Makespan)
		}
	}
}

func TestBalancedPlanIsBalanced(t *testing.T) {
	pair, tree, ws := setup(t)
	hm := AssignPredicted(pair, tree, ws)
	lpt := AssignBalanced(pair, tree, ws)
	// The load balancer optimizes makespan directly and must not lose
	// to the latency-greedy HeteroMap assignment.
	if lpt.Makespan > hm.Makespan*1.0001 {
		t.Fatalf("LPT makespan %v worse than HeteroMap %v", lpt.Makespan, hm.Makespan)
	}
	if lpt.Balance() < 0.5 {
		t.Fatalf("LPT balance %v too skewed", lpt.Balance())
	}
}

func TestDeterministicPlans(t *testing.T) {
	pair, tree, ws := setup(t)
	a := AssignBalanced(pair, tree, ws)
	b := AssignBalanced(pair, tree, ws)
	if a.Makespan != b.Makespan || len(a.GPUJobs) != len(b.GPUJobs) {
		t.Fatal("planning not deterministic")
	}
}

func TestPlanString(t *testing.T) {
	pair, tree, ws := setup(t)
	s := AssignPredicted(pair, tree, ws[:5]).String()
	if !strings.Contains(s, "HeteroMap") || !strings.Contains(s, "makespan") {
		t.Fatalf("plan string %q", s)
	}
}

func TestEmptyBatch(t *testing.T) {
	pair, tree, _ := setup(t)
	plan := AssignPredicted(pair, tree, nil)
	if plan.Jobs() != 0 || plan.Makespan != 0 {
		t.Fatal("empty batch")
	}
	if plan.Balance() != 1 {
		t.Fatal("empty batch balance")
	}
}
