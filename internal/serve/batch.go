package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"heteromap/internal/feature"
)

// task is one prediction flowing through the batcher. The model pointer
// is the immutable registry snapshot resolved at admission, so a
// concurrent hot-swap cannot change the predictor out from under a
// queued request.
type task struct {
	model    *Model
	feat     feature.Vector
	cacheKey string
	enqueued time.Time
	done     chan taskResult // buffered(1); exactly one send per task
}

type taskResult struct {
	resp PredictResponse
	err  error
}

// ErrQueueFull is returned by Submit when the bounded request queue is
// at capacity — the server converts it into 503 so load sheds at
// admission instead of collapsing latency for everyone.
var ErrQueueFull = fmt.Errorf("serve: prediction queue full")

// Batcher is the micro-batching request pipeline: tasks queue into a
// bounded channel and a worker pool drains them in batches bounded by
// size (MaxBatch) and deadline (MaxWait). Within a batch, tasks with the
// same cache key are deduplicated so one chain inference answers all of
// them — the amortization that makes per-request overhead drop under
// load instead of growing.
type Batcher struct {
	queue    chan *task
	cache    *Cache
	metrics  *Metrics
	maxBatch int
	maxWait  time.Duration

	wg      sync.WaitGroup
	stopped chan struct{}
	once    sync.Once
}

// NewBatcher builds and starts a batcher with the given worker count.
func NewBatcher(cache *Cache, metrics *Metrics, queueSize, workers, maxBatch int, maxWait time.Duration) *Batcher {
	if queueSize < 1 {
		queueSize = 256
	}
	if workers < 1 {
		workers = 2
	}
	if maxBatch < 1 {
		maxBatch = 32
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &Batcher{
		queue:    make(chan *task, queueSize),
		cache:    cache,
		metrics:  metrics,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		stopped:  make(chan struct{}),
	}
	b.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

// QueueDepth reports the number of waiting tasks (a point-in-time gauge).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Stop drains and shuts the workers down; queued tasks are still served.
func (b *Batcher) Stop() {
	b.once.Do(func() { close(b.stopped); close(b.queue) })
	b.wg.Wait()
}

// Submit enqueues a task, failing fast with ErrQueueFull when the
// bounded queue is at capacity, and waits for the result (or ctx).
func (b *Batcher) Submit(ctx context.Context, t *task) (PredictResponse, error) {
	t.enqueued = time.Now()
	select {
	case <-b.stopped:
		return PredictResponse{}, fmt.Errorf("serve: server shutting down")
	default:
	}
	select {
	case b.queue <- t:
	default:
		b.metrics.QueueFull.Add(1)
		return PredictResponse{}, ErrQueueFull
	}
	select {
	case res := <-t.done:
		return res.resp, res.err
	case <-ctx.Done():
		// The worker will still complete the task and send into the
		// buffered channel; nobody is left blocked.
		return PredictResponse{}, ctx.Err()
	}
}

// worker drains the queue into size/deadline-bounded batches.
func (b *Batcher) worker() {
	defer b.wg.Done()
	for {
		t, ok := <-b.queue
		if !ok {
			return
		}
		batch := []*task{t}
		timer := time.NewTimer(b.maxWait)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case next, ok := <-b.queue:
				if !ok {
					break fill
				}
				batch = append(batch, next)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		b.process(batch)
	}
}

// process serves one batch: group by cache key, answer each unique key
// once (cache first, then one chain Select), and fan the result back out
// to every waiting task.
func (b *Batcher) process(batch []*task) {
	b.metrics.Batches.Add(1)
	b.metrics.BatchItems.Add(uint64(len(batch)))

	groups := make(map[string][]*task, len(batch))
	order := make([]string, 0, len(batch))
	for _, t := range batch {
		if _, seen := groups[t.cacheKey]; !seen {
			order = append(order, t.cacheKey)
		}
		groups[t.cacheKey] = append(groups[t.cacheKey], t)
	}

	for _, key := range order {
		tasks := groups[key]
		lead := tasks[0]
		resp, cached := b.lookup(lead)
		if !cached {
			start := time.Now()
			sel := lead.model.Select(lead.feat)
			b.metrics.ObserveModel(lead.model.Name, time.Since(start))
			if n := len(sel.Fallbacks); n > 0 {
				b.metrics.Fallbacks.Add(uint64(n))
			}
			resp = PredictResponse{
				Model:         lead.model.Name,
				Version:       lead.model.Version,
				Key:           lead.feat.Key(),
				PredictorUsed: sel.Used,
				M:             sel.M,
				Fallbacks:     sel.Fallbacks,
			}
			b.cache.Put(lead.cacheKey, cachedPrediction{M: sel.M, Used: sel.Used})
		}
		for i, t := range tasks {
			r := resp
			// Tasks beyond the first in a group were answered by the
			// leader's inference — for them it is a (intra-batch) cache
			// hit in all but name; report Cached so callers can see
			// dedup working. The leader reports the true cache outcome.
			if i > 0 {
				r.Cached = true
			}
			b.metrics.RequestLatency.Observe(time.Since(t.enqueued))
			t.done <- taskResult{resp: r}
		}
	}
}

// lookup consults the prediction cache for a task's key.
func (b *Batcher) lookup(t *task) (PredictResponse, bool) {
	val, ok := b.cache.Get(t.cacheKey)
	if !ok {
		return PredictResponse{}, false
	}
	return PredictResponse{
		Model:         t.model.Name,
		Version:       t.model.Version,
		Key:           t.feat.Key(),
		PredictorUsed: val.Used,
		Cached:        true,
		M:             val.M,
	}, true
}

// cacheKeyFor builds the composite cache key: model identity (name and
// version) plus the discretized feature key, so hot-swapped model
// versions can never serve each other's cached predictions.
func cacheKeyFor(m *Model, f feature.Vector) string {
	return m.Name + "@" + strconv.FormatUint(m.Version, 10) + "|" + f.Key()
}
