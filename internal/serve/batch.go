package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/obs"
)

// task is one prediction flowing through the batcher. The model pointer
// is the immutable registry snapshot resolved at admission, so a
// concurrent hot-swap cannot change the predictor out from under a
// queued request; hedge is the last-known-good snapshot resolved at the
// same moment, the target of hedged dispatch and breaker failover.
type task struct {
	model    *Model
	hedge    *Model // may be nil: no previous healthy version
	feat     feature.Vector
	cacheKey CacheKey
	ctx      context.Context // carries the request deadline end to end
	enqueued time.Time
	// dequeued is when a worker picked the task into a batch; with
	// enqueued it splits observed latency into queue wait vs service
	// time, for served and shed tasks alike.
	dequeued time.Time
	// qspan times the queue stage in the request trace. It is created
	// before the enqueue attempt (the worker may dequeue and end it
	// before Submit returns) and is nil for untraced requests.
	qspan *obs.Span
	done  chan taskResult // buffered(1); exactly one send per task
}

// deadlineExpired reports whether the task's caller has already given up.
func (t *task) deadlineExpired() bool {
	return t.ctx != nil && t.ctx.Err() != nil
}

type taskResult struct {
	resp PredictResponse
	err  error
}

// ErrQueueFull is returned by Submit when the bounded request queue is
// at capacity — the server converts it into 503 so load sheds at
// admission instead of collapsing latency for everyone.
var ErrQueueFull = fmt.Errorf("serve: prediction queue full")

// BatcherConfig sizes the micro-batching pipeline; zero values select
// the defaults in parentheses.
type BatcherConfig struct {
	// QueueSize bounds the request queue (256); Workers sizes the
	// draining pool (2); MaxBatch and MaxWait bound each micro-batch
	// (32 items / 2ms).
	QueueSize int
	Workers   int
	MaxBatch  int
	MaxWait   time.Duration
	// StageBudget bounds one model inference before the batcher hedges
	// against the last-known-good version (25ms); it doubles as the
	// per-version breaker's latency SLO.
	StageBudget time.Duration
	// StallTimeout is how long a busy worker may go without progress
	// before the watchdog declares it stalled and spawns a replacement
	// (1s). <0 disables the watchdog.
	StallTimeout time.Duration
	// Chaos optionally injects serve-path faults (nil: none).
	Chaos *fault.ServeInjector
	// SLOExhausted, when non-nil, reports that the SLO error budget is
	// fully spent; the batcher then hedges after a quarter of the stage
	// budget — spending spare capacity to protect the tail before the
	// availability floor is breached.
	SLOExhausted func() bool
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.QueueSize < 1 {
		c.QueueSize = 256
	}
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.StageBudget <= 0 {
		c.StageBudget = 25 * time.Millisecond
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = time.Second
	}
	return c
}

// workerState is one drainer's liveness record for the watchdog: beat is
// the nanosecond timestamp of its last progress, busy whether it holds a
// dequeued batch, quit whether the watchdog has replaced it (a replaced
// worker finishes its in-flight batch — its callers still get answers —
// and then exits instead of double-draining).
type workerState struct {
	beat atomic.Int64
	busy atomic.Bool
	quit atomic.Bool
}

// Batcher is the micro-batching request pipeline: tasks queue into a
// bounded channel and a worker pool drains them in batches bounded by
// size (MaxBatch) and deadline (MaxWait). Within a batch, tasks with the
// same cache key are deduplicated so one chain inference answers all of
// them. Inferences run under a per-stage budget with hedged dispatch and
// per-model-version circuit breakers; a watchdog goroutine replaces
// workers that stall mid-batch.
type Batcher struct {
	queue   chan *task
	cache   *Cache
	metrics *Metrics
	cfg     BatcherConfig

	mu       sync.Mutex // guards workers and spawn-vs-stop
	workers  []*workerState
	stopping bool

	// sendMu serializes enqueue attempts against the queue close in
	// Stop: writers (Submit) hold it shared for the non-blocking send,
	// Stop holds it exclusively across close(queue).
	sendMu sync.RWMutex

	wg      sync.WaitGroup
	stopped chan struct{}
	once    sync.Once
}

// NewBatcher builds and starts a batcher.
func NewBatcher(cache *Cache, metrics *Metrics, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		queue:   make(chan *task, cfg.QueueSize),
		cache:   cache,
		metrics: metrics,
		cfg:     cfg,
		stopped: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		b.spawnWorker()
	}
	if cfg.StallTimeout > 0 {
		b.wg.Add(1)
		go b.watchdog()
	}
	return b
}

// spawnWorker starts one drainer, registering its liveness record.
func (b *Batcher) spawnWorker() {
	ws := &workerState{}
	ws.beat.Store(time.Now().UnixNano())
	b.mu.Lock()
	if b.stopping {
		b.mu.Unlock()
		return
	}
	b.workers = append(b.workers, ws)
	b.wg.Add(1)
	b.mu.Unlock()
	go b.worker(ws)
}

// QueueDepth reports the number of waiting tasks (a point-in-time gauge).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// Stop drains and shuts the workers down; queued tasks are still served.
// The queue closes under sendMu so an abrupt Server.Kill — which, unlike
// Shutdown, does not wait for in-flight handlers — cannot race a
// concurrent Submit's enqueue.
func (b *Batcher) Stop() {
	b.once.Do(func() {
		b.mu.Lock()
		b.stopping = true
		b.mu.Unlock()
		b.sendMu.Lock()
		close(b.stopped)
		close(b.queue)
		b.sendMu.Unlock()
	})
	b.wg.Wait()
}

// Submit enqueues a task, failing fast with ErrQueueFull when the
// bounded queue is at capacity (or chaos saturates it), and waits for
// the result (or ctx).
func (b *Batcher) Submit(ctx context.Context, t *task) (PredictResponse, error) {
	t.enqueued = time.Now()
	t.ctx = ctx
	select {
	case <-b.stopped:
		return PredictResponse{}, fmt.Errorf("serve: server shutting down")
	default:
	}
	if err := ctx.Err(); err != nil {
		return PredictResponse{}, err
	}
	if b.cfg.Chaos.RejectQueue() {
		b.metrics.ChaosQueueReject.Add(1)
		b.metrics.QueueFull.Add(1)
		obs.KeepTrace(ctx, obs.FlagShed)
		return PredictResponse{}, ErrQueueFull
	}
	t.qspan = obs.NewSpan(ctx, "queue")
	// Re-check stopped under the send lock: a Submit that passed the
	// fast-path check above may otherwise send on a queue Stop is
	// closing. The enqueue attempt is non-blocking, so the read lock is
	// held only momentarily.
	b.sendMu.RLock()
	select {
	case <-b.stopped:
		b.sendMu.RUnlock()
		t.qspan.EndOutcome("shutdown")
		return PredictResponse{}, fmt.Errorf("serve: server shutting down")
	default:
	}
	select {
	case b.queue <- t:
		b.sendMu.RUnlock()
	default:
		b.sendMu.RUnlock()
		b.metrics.QueueFull.Add(1)
		t.qspan.EndOutcome("shed")
		obs.KeepTrace(ctx, obs.FlagShed)
		return PredictResponse{}, ErrQueueFull
	}
	select {
	case res := <-t.done:
		return res.resp, res.err
	case <-ctx.Done():
		// The worker will still complete the task and send into the
		// buffered channel; nobody is left blocked.
		return PredictResponse{}, ctx.Err()
	}
}

// worker drains the queue into size/deadline-bounded batches until the
// queue closes or the watchdog replaces it.
func (b *Batcher) worker(ws *workerState) {
	defer b.wg.Done()
	for {
		if ws.quit.Load() {
			return
		}
		t, ok := <-b.queue
		if !ok {
			return
		}
		ws.busy.Store(true)
		ws.beat.Store(time.Now().UnixNano())
		if d, stall := b.cfg.Chaos.StallWorker(); stall {
			// The injected wedge: the worker sleeps holding a dequeued
			// task, exactly what a deadlocked or GC-starved drainer
			// looks like from outside. The watchdog must catch this.
			b.metrics.ChaosStalls.Add(1)
			time.Sleep(d)
		}
		t.dequeued = time.Now()
		t.qspan.End()
		batch := []*task{t}
		timer := time.NewTimer(b.cfg.MaxWait)
	fill:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case next, ok := <-b.queue:
				if !ok {
					break fill
				}
				next.dequeued = time.Now()
				next.qspan.End()
				batch = append(batch, next)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		b.process(batch)
		ws.beat.Store(time.Now().UnixNano())
		ws.busy.Store(false)
	}
}

// watchdog scans worker liveness and replaces drainers that have gone
// longer than StallTimeout without progress while holding work. The
// stalled goroutine cannot be killed; it is marked quit so it exits
// after finishing (and answering) its in-flight batch, while the
// replacement keeps the pipeline draining.
func (b *Batcher) watchdog() {
	defer b.wg.Done()
	interval := b.cfg.StallTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stopped:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		var stalled []*workerState
		b.mu.Lock()
		for _, ws := range b.workers {
			if ws.quit.Load() || !ws.busy.Load() {
				continue
			}
			if now-ws.beat.Load() > b.cfg.StallTimeout.Nanoseconds() {
				ws.quit.Store(true)
				stalled = append(stalled, ws)
			}
		}
		b.mu.Unlock()
		for range stalled {
			b.metrics.WorkerRestarts.Add(1)
			b.spawnWorker()
		}
	}
}

// process serves one batch: group by cache key, answer each unique key
// once (cache first, then chain inference), and fan the result back out
// to every waiting task. Groups that miss the cache go through one
// batch-native chain consult when the whole batch qualifies (see
// processBatchNative), and otherwise through per-group hedged dispatch.
// Stage timings (queue wait, batch assembly, cache lookup, inference)
// are attributed to every member's metrics and trace; shared stages
// carry their true shared cost.
func (b *Batcher) process(batch []*task) {
	b.metrics.Batches.Add(1)
	b.metrics.BatchItems.Add(uint64(len(batch)))
	processStart := time.Now()
	batchSize := strconv.Itoa(len(batch))

	groups := make(map[CacheKey][]*task, len(batch))
	order := make([]CacheKey, 0, len(batch))
	for _, t := range batch {
		if _, seen := groups[t.cacheKey]; !seen {
			order = append(order, t.cacheKey)
		}
		groups[t.cacheKey] = append(groups[t.cacheKey], t)
	}

	// Pass 1: drop expired callers, attribute the shared queue/assembly
	// stages, and consult the cache. Hit groups answer immediately;
	// missed groups collect for inference in pass 2.
	var missed [][]*task
	for _, key := range order {
		tasks := groups[key]
		// Deadline propagation: tasks whose caller already gave up are
		// answered with the deadline error without burning inference,
		// and a group nobody is waiting on anymore is skipped entirely.
		live := tasks[:0]
		for _, t := range tasks {
			if t.deadlineExpired() {
				b.metrics.DeadlineDrops.Add(1)
				// The wait that ended in a drop: shed, not served.
				b.metrics.ShedWait.ObserveTraced(t.dequeued.Sub(t.enqueued), obs.TraceID(t.ctx))
				obs.KeepTrace(t.ctx, obs.FlagDeadline)
				t.done <- taskResult{err: context.DeadlineExceeded}
				continue
			}
			b.metrics.QueueWait.ObserveTraced(t.dequeued.Sub(t.enqueued), obs.TraceID(t.ctx))
			b.metrics.BatchAssembly.ObserveTraced(processStart.Sub(t.dequeued), obs.TraceID(t.ctx))
			obs.AddSpan(t.ctx, "batch", t.dequeued, processStart.Sub(t.dequeued),
				obs.Attr{Key: "batch_size", Value: batchSize})
			live = append(live, t)
		}
		if len(live) == 0 {
			continue
		}
		lead := live[0]

		cacheStart := time.Now()
		resp, cached := b.lookup(lead)
		cacheDur := time.Since(cacheStart)
		b.metrics.CacheLookup.ObserveTraced(cacheDur, obs.TraceID(lead.ctx))
		hit := strconv.FormatBool(cached)
		for _, t := range live {
			obs.AddSpan(t.ctx, "cache", cacheStart, cacheDur, obs.Attr{Key: "hit", Value: hit})
		}
		if !cached {
			missed = append(missed, live)
			continue
		}
		b.fanOut(live, resp)
	}
	if len(missed) == 0 {
		return
	}

	// Pass 2: inference for the missed groups — one batch-native pass
	// when the batch qualifies, per-group hedged dispatch otherwise.
	if b.processBatchNative(missed) {
		return
	}
	for _, live := range missed {
		b.inferGroup(live)
	}
}

// fanOut delivers one group's response to every waiting task.
func (b *Batcher) fanOut(live []*task, resp PredictResponse) {
	for i, t := range live {
		r := resp
		// Tasks beyond the first in a group were answered by the
		// leader's inference — for them it is a (intra-batch) cache
		// hit in all but name; report Cached so callers can see
		// dedup working. The leader reports the true cache outcome.
		if i > 0 {
			r.Cached = true
		}
		b.metrics.RequestLatency.ObserveTraced(time.Since(t.enqueued), obs.TraceID(t.ctx))
		t.done <- taskResult{resp: r}
	}
}

// inferGroup answers one cache-missed group through the hedged per-group
// dispatch path.
func (b *Batcher) inferGroup(live []*task) {
	lead := live[0]
	inferStart := time.Now()
	sel, answered, hedged, events := b.selectHedged(lead)
	inferDur := time.Since(inferStart)
	b.metrics.Inference.ObserveTraced(inferDur, obs.TraceID(lead.ctx))
	modelTag := modelVersionTag(answered)
	for _, t := range live {
		obs.AddSpan(t.ctx, "inference", inferStart, inferDur,
			obs.Attr{Key: "model", Value: modelTag},
			obs.Attr{Key: "used", Value: sel.Used},
			obs.Attr{Key: "hedged", Value: strconv.FormatBool(hedged)},
			obs.Attr{Key: "group_size", Value: strconv.Itoa(len(live))})
	}
	if n := len(sel.Fallbacks); n > 0 {
		b.metrics.Fallbacks.Add(uint64(n))
	}
	resp := PredictResponse{
		Model:         answered.Name,
		Version:       answered.Version,
		Key:           lead.feat.Key(),
		PredictorUsed: sel.Used,
		M:             sel.M,
		Fallbacks:     sel.Fallbacks,
		Resilience:    events,
	}
	// Cache under the version that actually answered, so a
	// hedged answer can never masquerade as the primary's.
	if !hedged {
		b.cache.Put(lead.cacheKey, cachedPrediction{M: sel.M, Used: sel.Used})
	} else {
		b.cache.Put(cacheKeyFor(answered, lead.feat), cachedPrediction{M: sel.M, Used: sel.Used})
	}
	b.fanOut(live, resp)
}

// processBatchNative answers every missed group with one batch-native
// chain consult — a single preallocated forward pass over the whole
// micro-batch instead of one inference per group. The batch qualifies
// only when the win is real and no resilience behaviour would be
// skipped: at least two distinct missed groups, all admitted under the
// same model snapshot, a batch-capable chain, a closed (or absent)
// breaker and no chaos injector — breaker routing, hedging and fault
// injection stay exclusively on the per-group path. One stage budget
// covers the whole pass; on overrun the attempt is abandoned and the
// caller falls back to per-group hedged dispatch, exactly as if the
// batch path did not exist. Reports whether the groups were answered.
func (b *Batcher) processBatchNative(missed [][]*task) bool {
	if len(missed) < 2 || b.cfg.Chaos != nil {
		return false
	}
	m := missed[0][0].model
	for _, live := range missed[1:] {
		if live[0].model != m {
			return false
		}
	}
	if !m.BatchCapable() {
		return false
	}
	if br := m.Breaker(); br != nil && br.State() != fault.BreakerClosed {
		return false
	}

	feats := make([]feature.Vector, len(missed))
	for i, live := range missed {
		feats[i] = live[0].feat
	}
	lead := missed[0][0]
	inferStart := time.Now()
	pctx, psp := obs.StartSpan(lead.ctx, "infer:batch")
	psp.SetAttr("model", modelVersionTag(m))
	psp.SetAttr("rows", strconv.Itoa(len(missed)))
	sels := make([]fault.Selection, len(missed))
	done := make(chan struct{})
	go func() {
		m.SelectBatchCtx(pctx, feats, sels)
		close(done)
	}()
	budget := time.NewTimer(b.cfg.StageBudget)
	select {
	case <-done:
		budget.Stop()
	case <-budget.C:
		// Budget blown: abandon the batch attempt (the goroutine's
		// results are discarded; its late spans hit the finished-trace
		// guard) and let the per-group path run its full hedging
		// machinery, which also owns the breaker bookkeeping.
		psp.Cancel()
		return false
	}
	inferDur := time.Since(inferStart)
	psp.End()
	degraded := false
	for i := range sels {
		if sels[i].Degraded() {
			degraded = true
			break
		}
	}
	b.metrics.ObserveModel(m.Name, inferDur)
	if br := m.Breaker(); br != nil {
		if degraded || inferDur > b.cfg.StageBudget {
			br.RecordFailure()
		} else {
			br.RecordSuccess()
		}
	}

	modelTag := modelVersionTag(m)
	for i, live := range missed {
		sel := sels[i]
		b.metrics.Inference.ObserveTraced(inferDur, obs.TraceID(live[0].ctx))
		for _, t := range live {
			obs.AddSpan(t.ctx, "inference", inferStart, inferDur,
				obs.Attr{Key: "model", Value: modelTag},
				obs.Attr{Key: "used", Value: sel.Used},
				obs.Attr{Key: "hedged", Value: "false"},
				obs.Attr{Key: "group_size", Value: strconv.Itoa(len(live))},
				obs.Attr{Key: "batch_rows", Value: strconv.Itoa(len(missed))})
		}
		if n := len(sel.Fallbacks); n > 0 {
			b.metrics.Fallbacks.Add(uint64(n))
		}
		resp := PredictResponse{
			Model:         m.Name,
			Version:       m.Version,
			Key:           live[0].feat.Key(),
			PredictorUsed: sel.Used,
			M:             sel.M,
			Fallbacks:     sel.Fallbacks,
		}
		b.cache.Put(live[0].cacheKey, cachedPrediction{M: sel.M, Used: sel.Used})
		b.fanOut(live, resp)
	}
	return true
}

// modelVersionTag renders the "name@vN" label used in traces and events.
func modelVersionTag(m *Model) string {
	return m.Name + "@v" + strconv.FormatUint(m.Version, 10)
}

// selectHedged consults the task's model under the stage budget. An open
// per-version breaker routes straight to the last-known-good snapshot; a
// primary that overruns the budget races a hedge launched against
// last-known-good, records a breaker failure, and — when no hedge target
// exists — falls to the chain's fixed safety default after a second
// budget rather than wedging the worker. Returns the selection, the
// model that answered, whether the answer came from a hedge, and the
// resilience events that altered the dispatch (empty on the plain path).
//
// Tracing: the primary and hedge consultations each get a span on the
// lead task's trace; the race winner's span ends "ok" and the loser is
// marked cancelled, so the trace shows which attempt actually answered.
// The losing goroutine may end its chain spans after the request trace
// finishes — those land in the finished-trace guard and are dropped.
func (b *Batcher) selectHedged(t *task) (fault.Selection, *Model, bool, []string) {
	primary := t.model
	if br := primary.Breaker(); br != nil && t.hedge != nil && !br.Allow() {
		b.metrics.BreakerRouted.Add(1)
		events := []string{fmt.Sprintf("breaker: %s open, routed to last-known-good %s",
			modelVersionTag(primary), modelVersionTag(t.hedge))}
		obs.KeepTrace(t.ctx, obs.FlagBreaker)
		hctx, hsp := obs.StartSpan(t.ctx, "infer:breaker-route")
		hsp.SetAttr("model", modelVersionTag(t.hedge))
		start := time.Now()
		sel := t.hedge.SelectCtx(hctx, t.feat)
		dur := time.Since(start)
		hsp.End()
		b.recordOutcome(t.hedge, sel, dur)
		return sel, t.hedge, true, events
	}

	start := time.Now()
	pctx, psp := obs.StartSpan(t.ctx, "infer:primary")
	psp.SetAttr("model", modelVersionTag(primary))
	primaryCh := make(chan fault.Selection, 1)
	go func() {
		if d, slow := b.cfg.Chaos.SlowModel(); slow {
			b.metrics.ChaosSlowModel.Add(1)
			time.Sleep(d)
		}
		primaryCh <- primary.SelectCtx(pctx, t.feat)
	}()

	stageBudget := b.cfg.StageBudget
	if b.cfg.SLOExhausted != nil && b.cfg.SLOExhausted() {
		// Error budget gone: hedge much earlier. Latency spent on a slow
		// primary is exactly what the exhausted SLO can no longer afford.
		stageBudget /= 4
	}
	budget := time.NewTimer(stageBudget)
	select {
	case sel := <-primaryCh:
		budget.Stop()
		psp.End()
		b.recordOutcome(primary, sel, time.Since(start))
		return sel, primary, false, nil
	case <-budget.C:
	}

	// Stage budget blown: this attempt is a latency-SLO failure for the
	// primary version regardless of how the race below ends.
	b.metrics.Hedges.Add(1)
	if br := primary.Breaker(); br != nil {
		br.RecordFailure()
	}
	events := []string{fmt.Sprintf("hedge: %s over stage budget %v",
		modelVersionTag(primary), stageBudget)}

	if t.hedge != nil {
		hctx, hsp := obs.StartSpan(t.ctx, "infer:hedge")
		hsp.SetAttr("model", modelVersionTag(t.hedge))
		hedgeCh := make(chan fault.Selection, 1)
		go func() { hedgeCh <- t.hedge.SelectCtx(hctx, t.feat) }()
		select {
		case sel := <-primaryCh:
			psp.End()
			hsp.Cancel()
			return sel, primary, false, events
		case sel := <-hedgeCh:
			b.metrics.HedgeWins.Add(1)
			hsp.End()
			psp.Cancel()
			obs.KeepTrace(t.ctx, obs.FlagHedgeWin)
			events = append(events, fmt.Sprintf("hedge-win: last-known-good %s answered",
				modelVersionTag(t.hedge)))
			return sel, t.hedge, true, events
		}
	}

	// No hedge target: give the primary one more budget, then answer
	// with the fixed safety default — bounded latency beats a wedged
	// worker and a timed-out caller.
	grace := time.NewTimer(b.cfg.StageBudget)
	defer grace.Stop()
	var done <-chan struct{}
	if t.ctx != nil {
		done = t.ctx.Done()
	}
	select {
	case sel := <-primaryCh:
		psp.End()
		return sel, primary, false, events
	case <-grace.C:
	case <-done:
	}
	b.metrics.SafeDefaults.Add(1)
	psp.Cancel()
	obs.KeepTrace(t.ctx, obs.FlagSafeDefault)
	events = append(events, fmt.Sprintf("safe-default: %s unresponsive after two budgets, fixed choice served",
		modelVersionTag(primary)))
	return primary.SafeDefault(), primary, false, events
}

// recordOutcome feeds one completed inference into the model's breaker
// and latency metrics: degrading past the primary predictor or blowing
// the stage budget counts as an SLO violation.
func (b *Batcher) recordOutcome(m *Model, sel fault.Selection, dur time.Duration) {
	b.metrics.ObserveModel(m.Name, dur)
	if br := m.Breaker(); br != nil {
		if sel.Degraded() || dur > b.cfg.StageBudget {
			br.RecordFailure()
		} else {
			br.RecordSuccess()
		}
	}
}

// lookup consults the prediction cache for a task's key.
func (b *Batcher) lookup(t *task) (PredictResponse, bool) {
	val, ok := b.cache.Get(t.cacheKey)
	if !ok {
		return PredictResponse{}, false
	}
	return PredictResponse{
		Model:         t.model.Name,
		Version:       t.model.Version,
		Key:           t.feat.Key(),
		PredictorUsed: val.Used,
		Cached:        true,
		M:             val.M,
	}, true
}

// cacheKeyFor builds the composite cache key: model identity (name and
// version) plus the binary feature key. Pure value construction — no
// allocation — which is what keeps the admission path and the cache-hit
// fast path off the heap.
func cacheKeyFor(m *Model, f feature.Vector) CacheKey {
	return CacheKey{Model: m.Name, Version: m.Version, Feat: f.Binary()}
}
