package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
)

// countingPred counts inference calls; the dedup assertions use it.
type countingPred struct {
	calls atomic.Int64
	m     config.M
}

func (p *countingPred) Name() string { return "Counting" }
func (p *countingPred) Predict(feature.Vector) config.M {
	p.calls.Add(1)
	return p.m
}

func batchFixture(t *testing.T, queue, workers, maxBatch int, wait time.Duration) (*Batcher, *Model, *countingPred, *Cache, *Metrics) {
	t.Helper()
	pair := machine.PrimaryPair()
	reg := NewRegistry(pair)
	pred := &countingPred{m: config.DefaultGPU(pair.Limits())}
	model, err := reg.Register("count", "test", pred)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(1024, 4)
	metrics := NewMetrics()
	b := NewBatcher(cache, metrics, BatcherConfig{
		QueueSize: queue, Workers: workers, MaxBatch: maxBatch, MaxWait: wait,
	})
	t.Cleanup(b.Stop)
	return b, model, pred, cache, metrics
}

func testFeature(i int) feature.Vector {
	var f feature.Vector
	for j := range f {
		f[j] = float64((i+j)%11) / 10
	}
	return f
}

func submit(ctx context.Context, b *Batcher, m *Model, f feature.Vector) (PredictResponse, error) {
	return b.Submit(ctx, &task{
		model:    m,
		feat:     f,
		cacheKey: cacheKeyFor(m, f),
		done:     make(chan taskResult, 1),
	})
}

// Identical keys in one batch are answered by a single inference, and a
// repeat submission is a cache hit.
func TestBatcherDedupAndCache(t *testing.T) {
	// One worker and a generous wait so concurrent submissions coalesce.
	b, model, pred, _, metrics := batchFixture(t, 64, 1, 32, 20*time.Millisecond)
	f := testFeature(0)

	const n = 16
	var wg sync.WaitGroup
	resps := make([]PredictResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := submit(context.Background(), b, model, f)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			resps[i] = r
		}(i)
	}
	wg.Wait()

	// All n callers answered; far fewer inferences than callers ran
	// (exact count depends on how the worker's first drain races the
	// submissions, but dedup must beat one-inference-per-caller).
	if calls := pred.calls.Load(); calls >= n/2 {
		t.Fatalf("dedup ineffective: %d inferences for %d identical requests", calls, n)
	}
	for i, r := range resps {
		if r.M != resps[0].M {
			t.Fatalf("response %d diverged: %v vs %v", i, r.M, resps[0].M)
		}
	}

	// A follow-up for the same key must be served from the cache.
	calls := pred.calls.Load()
	r, err := submit(context.Background(), b, model, f)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if pred.calls.Load() != calls {
		t.Fatal("cache hit still ran inference")
	}
	if metrics.Batches.Load() == 0 || metrics.BatchItems.Load() < n {
		t.Fatalf("batch metrics not recorded: %d batches, %d items",
			metrics.Batches.Load(), metrics.BatchItems.Load())
	}
}

// A full queue sheds load with ErrQueueFull instead of blocking.
func TestBatcherQueueFull(t *testing.T) {
	pair := machine.PrimaryPair()
	reg := NewRegistry(pair)
	slow := &slowPred{m: config.DefaultGPU(pair.Limits()), delay: 20 * time.Millisecond}
	model, _ := reg.Register("slow", "test", slow)
	cache := NewCache(16, 1)
	metrics := NewMetrics()
	b := NewBatcher(cache, metrics, BatcherConfig{
		QueueSize: 1, Workers: 1, MaxBatch: 1, MaxWait: time.Microsecond,
	})
	t.Cleanup(b.Stop)

	// Saturate: the worker is busy with one slow task, the queue holds
	// one more, so additional submissions must be rejected.
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := submit(context.Background(), b, model, testFeature(i))
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	full := 0
	for err := range errs {
		if err == ErrQueueFull {
			full++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("no request was shed on a saturated queue")
	}
	if metrics.QueueFull.Load() != uint64(full) {
		t.Fatalf("QueueFull metric %d != %d rejections", metrics.QueueFull.Load(), full)
	}
}

// Submission respects caller deadlines without leaking the worker's
// result send (the done channel is buffered).
func TestBatcherContextCancel(t *testing.T) {
	pair := machine.PrimaryPair()
	reg := NewRegistry(pair)
	slow := &slowPred{m: config.DefaultGPU(pair.Limits()), delay: 50 * time.Millisecond}
	model, _ := reg.Register("slow", "test", slow)
	b := NewBatcher(NewCache(16, 1), NewMetrics(), BatcherConfig{
		QueueSize: 4, Workers: 1, MaxBatch: 1, MaxWait: time.Microsecond,
		StageBudget: time.Second, // the slow predictor must not trigger hedging here
	})
	t.Cleanup(b.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := submit(ctx, b, model, testFeature(1))
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// Stop drains queued tasks before the workers exit.
func TestBatcherStopDrains(t *testing.T) {
	b, model, _, _, _ := batchFixture(t, 64, 2, 8, time.Millisecond)
	var wg sync.WaitGroup
	errCount := atomic.Int64{}
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := submit(context.Background(), b, model, testFeature(i%3)); err != nil {
				errCount.Add(1)
			}
		}(i)
	}
	wg.Wait() // all submissions answered before Stop
	b.Stop()
	if errCount.Load() != 0 {
		t.Fatalf("%d submissions failed", errCount.Load())
	}
	// After Stop, submissions fail cleanly instead of panicking.
	if _, err := submit(context.Background(), b, model, testFeature(0)); err == nil {
		t.Fatal("submit after Stop succeeded")
	}
}

// slowPred sleeps before answering, to hold workers busy in tests.
type slowPred struct {
	m     config.M
	delay time.Duration
}

func (p *slowPred) Name() string { return "Slow" }
func (p *slowPred) Predict(feature.Vector) config.M {
	time.Sleep(p.delay)
	return p.m
}
