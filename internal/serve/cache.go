package serve

import (
	"container/list"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"heteromap/internal/config"
)

// cachedPrediction is what the cache stores for one (model version,
// discretized characterization) pair.
type cachedPrediction struct {
	M    config.M
	Used string
}

// Cache is a sharded LRU prediction cache. Keys embed the model name and
// version in front of the discretized feature key, so hot-swapping a
// model naturally invalidates its entries (they stop being referenced
// and age out) without a stop-the-world flush. The finite discretized
// key space is what makes caching predictions worthwhile at all: any
// realistic traffic mix revisits grid points constantly.
type Cache struct {
	shards []*cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val cachedPrediction
}

// NewCache builds a cache holding up to capacity entries across the
// given number of shards (both floored at 1; capacity is split evenly).
func NewCache(capacity, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	c := &Cache{shards: make([]*cacheShard, shards)}
	per := capacity / shards
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[string]*list.Element),
		}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get looks a key up, counting the hit or miss.
func (c *Cache) Get(key string) (cachedPrediction, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	c.misses.Add(1)
	return cachedPrediction{}, false
}

// Put inserts or refreshes a key, evicting the shard's least recently
// used entry when full.
func (c *Cache) Put(key string, val cachedPrediction) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// PurgePrefix removes every entry whose key starts with prefix and
// returns how many were dropped. Reload quarantine uses it with the
// rejected "model@version|" prefix so a candidate that failed canary
// validation can never leave residue behind, and tests use the zero
// return to prove the rejected version never populated the cache.
func (c *Cache) PurgePrefix(prefix string) int {
	purged := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for key, el := range s.items {
			if strings.HasPrefix(key, prefix) {
				s.ll.Remove(el)
				delete(s.items, key)
				purged++
			}
		}
		s.mu.Unlock()
	}
	return purged
}

// Len returns the live entry count across shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit/miss/eviction counters.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// exportEntry is one cache entry in snapshot form.
type exportEntry struct {
	key string
	val cachedPrediction
}

// export copies every live entry, least recently used first, so a
// restore that replays them in order leaves the recency order intact.
func (c *Cache) export() []exportEntry {
	var out []exportEntry
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			out = append(out, exportEntry{key: e.key, val: e.val})
		}
		s.mu.Unlock()
	}
	return out
}
