package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"heteromap/internal/config"
	"heteromap/internal/feature"
)

// cachedPrediction is what the cache stores for one (model version,
// discretized characterization) pair.
type cachedPrediction struct {
	M    config.M
	Used string
}

// CacheKey identifies one cached prediction: the answering model's name
// and version plus the binary feature key. It is a plain comparable
// value — building one from an admitted request is allocation-free,
// which is what lets the cache-hit fast path answer without touching
// the heap (the old string key cost ~19 allocs to render). Hot-swapped
// model versions can never serve each other's entries because Version
// is part of the identity.
type CacheKey struct {
	Model   string
	Version uint64
	Feat    feature.BinaryKey
}

// hash mixes every identity component through 64-bit FNV-1a without
// allocating; the cache uses it only for shard selection.
func (k CacheKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Model); i++ {
		h = (h ^ uint64(k.Model[i])) * prime64
	}
	for s := 0; s < 64; s += 8 {
		h = (h ^ uint64(byte(k.Version>>s))) * prime64
	}
	for _, bits := range k.Feat {
		for s := 0; s < 64; s += 8 {
			h = (h ^ uint64(byte(bits>>s))) * prime64
		}
	}
	return h
}

// Cache is a sharded LRU prediction cache keyed on CacheKey. The finite
// discretized key space is what makes caching predictions worthwhile at
// all: any realistic traffic mix revisits grid points constantly. Get
// and Put are allocation-free on the hit path — the serve fast path's
// latency budget is sub-microsecond.
type Cache struct {
	shards []*cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[CacheKey]*list.Element
}

type cacheEntry struct {
	key CacheKey
	val cachedPrediction
}

// NewCache builds a cache holding up to capacity entries across the
// given number of shards (both floored at 1; capacity is split evenly).
func NewCache(capacity, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	c := &Cache{shards: make([]*cacheShard, shards)}
	per := capacity / shards
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:   per,
			ll:    list.New(),
			items: make(map[CacheKey]*list.Element),
		}
	}
	return c
}

func (c *Cache) shard(key CacheKey) *cacheShard {
	return c.shards[key.hash()%uint64(len(c.shards))]
}

// Get looks a key up, counting the hit or miss.
func (c *Cache) Get(key CacheKey) (cachedPrediction, bool) {
	val, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return val, ok
}

// GetFast is the fast path's lookup: a hit counts as usual, but a miss
// counts nothing — the missed request proceeds into the batcher, whose
// authoritative lookup records the miss exactly once. Without the split
// every fast-path miss would be double-counted and the reported hit
// ratio would understate the cache.
func (c *Cache) GetFast(key CacheKey) (cachedPrediction, bool) {
	val, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	}
	return val, ok
}

func (c *Cache) lookup(key CacheKey) (cachedPrediction, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).val, true
	}
	return cachedPrediction{}, false
}

// Put inserts or refreshes a key, evicting the shard's least recently
// used entry when full.
func (c *Cache) Put(key CacheKey, val cachedPrediction) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// PurgeModel removes every entry belonging to the named model — all
// versions — and returns how many were dropped. Reload quarantine uses
// it so a candidate that failed canary validation can never leave
// residue behind, and tests use the zero return to prove the rejected
// version never populated the cache.
func (c *Cache) PurgeModel(model string) int {
	purged := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for key, el := range s.items {
			if key.Model == model {
				s.ll.Remove(el)
				delete(s.items, key)
				purged++
			}
		}
		s.mu.Unlock()
	}
	return purged
}

// Len returns the live entry count across shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns the cumulative hit/miss/eviction counters.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// exportEntry is one cache entry in snapshot form.
type exportEntry struct {
	key CacheKey
	val cachedPrediction
}

// export copies every live entry, least recently used first, so a
// restore that replays them in order leaves the recency order intact.
func (c *Cache) export() []exportEntry {
	var out []exportEntry
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			out = append(out, exportEntry{key: e.key, val: e.val})
		}
		s.mu.Unlock()
	}
	return out
}
