package serve

import (
	"fmt"
	"sync"
	"testing"

	"heteromap/internal/config"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(4, 1) // single shard: deterministic LRU order
	m := config.M{Cores: 7}

	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", cachedPrediction{M: m, Used: "tree"})
	got, ok := c.Get("a")
	if !ok || got.M != m || got.Used != "tree" {
		t.Fatalf("bad hit: %+v ok=%v", got, ok)
	}

	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("fill%d", i), cachedPrediction{})
	}
	// "a" was recently used before the fills; the first fill is LRU now,
	// and inserting 4 new keys into cap-4 must have evicted exactly one.
	hits, misses, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2, 1)
	c.Put("old", cachedPrediction{})
	c.Put("mid", cachedPrediction{})
	if _, ok := c.Get("old"); !ok { // refresh "old"; "mid" becomes LRU
		t.Fatal("old missing")
	}
	c.Put("new", cachedPrediction{})
	if _, ok := c.Get("mid"); ok {
		t.Fatal("mid should have been evicted")
	}
	if _, ok := c.Get("old"); !ok {
		t.Fatal("old should have survived")
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2, 1)
	c.Put("k", cachedPrediction{Used: "v1"})
	c.Put("k", cachedPrediction{Used: "v2"})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, _ := c.Get("k")
	if got.Used != "v2" {
		t.Fatalf("Used = %q, want v2", got.Used)
	}
}

// Concurrent mixed load across shards must be safe (-race) and keep
// counters coherent: hits+misses equals the number of Gets.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, 8)
	const goroutines, ops = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%200)
				if i%3 == 0 {
					c.Put(key, cachedPrediction{Used: key})
				} else {
					if v, ok := c.Get(key); ok && v.Used != key {
						t.Errorf("key %s returned value %q", key, v.Used)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := c.Stats()
	getsPerGoroutine := 0
	for i := 0; i < ops; i++ {
		if i%3 != 0 {
			getsPerGoroutine++
		}
	}
	wantGets := uint64(goroutines * getsPerGoroutine)
	if hits+misses != wantGets {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, wantGets)
	}
}
