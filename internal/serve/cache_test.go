package serve

import (
	"fmt"
	"sync"
	"testing"

	"heteromap/internal/config"
)

// ck builds a distinct CacheKey from a label; cache unit tests only need
// distinct identities, not realistic feature vectors.
func ck(label string) CacheKey {
	return CacheKey{Model: label}
}

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(4, 1) // single shard: deterministic LRU order
	m := config.M{Cores: 7}

	if _, ok := c.Get(ck("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(ck("a"), cachedPrediction{M: m, Used: "tree"})
	got, ok := c.Get(ck("a"))
	if !ok || got.M != m || got.Used != "tree" {
		t.Fatalf("bad hit: %+v ok=%v", got, ok)
	}

	for i := 0; i < 4; i++ {
		c.Put(ck(fmt.Sprintf("fill%d", i)), cachedPrediction{})
	}
	// "a" was recently used before the fills; the first fill is LRU now,
	// and inserting 4 new keys into cap-4 must have evicted exactly one.
	hits, misses, evictions := c.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	c := NewCache(2, 1)
	c.Put(ck("old"), cachedPrediction{})
	c.Put(ck("mid"), cachedPrediction{})
	if _, ok := c.Get(ck("old")); !ok { // refresh "old"; "mid" becomes LRU
		t.Fatal("old missing")
	}
	c.Put(ck("new"), cachedPrediction{})
	if _, ok := c.Get(ck("mid")); ok {
		t.Fatal("mid should have been evicted")
	}
	if _, ok := c.Get(ck("old")); !ok {
		t.Fatal("old should have survived")
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2, 1)
	c.Put(ck("k"), cachedPrediction{Used: "v1"})
	c.Put(ck("k"), cachedPrediction{Used: "v2"})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, _ := c.Get(ck("k"))
	if got.Used != "v2" {
		t.Fatalf("Used = %q, want v2", got.Used)
	}
}

// GetFast must count hits exactly like Get but never count a miss: a
// fast-path miss proceeds into the batcher, whose authoritative lookup
// records it — counting both would double every miss.
func TestCacheGetFastCountsHitsOnly(t *testing.T) {
	c := NewCache(4, 1)
	if _, ok := c.GetFast(ck("a")); ok {
		t.Fatal("hit on empty cache")
	}
	hits, misses, _ := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("after fast miss: hits=%d misses=%d, want 0/0", hits, misses)
	}
	c.Put(ck("a"), cachedPrediction{Used: "tree"})
	if v, ok := c.GetFast(ck("a")); !ok || v.Used != "tree" {
		t.Fatalf("fast hit: %+v ok=%v", v, ok)
	}
	hits, misses, _ = c.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("after fast hit: hits=%d misses=%d, want 1/0", hits, misses)
	}
}

// PurgeModel removes every version of exactly the named model.
func TestCachePurgeModel(t *testing.T) {
	c := NewCache(16, 4)
	c.Put(CacheKey{Model: "tree", Version: 1}, cachedPrediction{})
	c.Put(CacheKey{Model: "tree", Version: 2}, cachedPrediction{})
	c.Put(CacheKey{Model: "deep", Version: 1}, cachedPrediction{})
	if n := c.PurgeModel("tree"); n != 2 {
		t.Fatalf("PurgeModel(tree) = %d, want 2", n)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if _, ok := c.Get(CacheKey{Model: "deep", Version: 1}); !ok {
		t.Fatal("unrelated model purged")
	}
	if n := c.PurgeModel("tree"); n != 0 {
		t.Fatalf("second purge = %d, want 0", n)
	}
}

// Concurrent mixed load across shards must be safe (-race) and keep
// counters coherent: hits+misses equals the number of Gets.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, 8)
	const goroutines, ops = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				label := fmt.Sprintf("k%d", (g*31+i)%200)
				key := ck(label)
				if i%3 == 0 {
					c.Put(key, cachedPrediction{Used: label})
				} else {
					if v, ok := c.Get(key); ok && v.Used != label {
						t.Errorf("key %s returned value %q", label, v.Used)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, _ := c.Stats()
	getsPerGoroutine := 0
	for i := 0; i < ops; i++ {
		if i%3 != 0 {
			getsPerGoroutine++
		}
	}
	wantGets := uint64(goroutines * getsPerGoroutine)
	if hits+misses != wantGets {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, wantGets)
	}
}
