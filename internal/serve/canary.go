package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/durable"
)

// GoldenCase is one held-out validation pair for canary reloads: a
// characterization the candidate model must answer, optionally with the
// exact mapping it must produce. Cases without WantM still gate on
// validity (a deployable M from the candidate's own predictor, not a
// fallback) and on the latency SLO.
type GoldenCase struct {
	Req   PredictRequest `json:"request"`
	WantM *config.M      `json:"m,omitempty"`
}

// CanaryConfig is the reload admission gate: before a candidate snapshot
// replaces the active model, it must answer every golden case within the
// latency budget, without degrading onto its fallback chain, and with at
// most MaxMismatches strict-answer disagreements.
type CanaryConfig struct {
	// Cases is the held-out golden set.
	Cases []GoldenCase
	// MaxLatency is the per-prediction canary SLO (the -reload-slo
	// flag); 0 disables the latency gate.
	MaxLatency time.Duration
	// MaxMismatches bounds how many strict cases (WantM set) may
	// disagree before the candidate is rejected.
	MaxMismatches int
	// Step is the feature discretization increment; 0 uses the server
	// default at validation time.
	Step float64
}

// CanaryReport summarizes one canary run, for /v1/reload responses and
// the quarantine record.
type CanaryReport struct {
	Cases      int           `json:"cases"`
	Mismatches int           `json:"mismatches"`
	MaxLatency time.Duration `json:"max_latency_ns"`
	Passed     bool          `json:"passed"`
}

// Validate runs the candidate model against the golden set. It returns
// the report and, when the candidate must be rejected, the reason.
func (c *CanaryConfig) Validate(m *Model) (CanaryReport, error) {
	rep := CanaryReport{}
	if c == nil {
		rep.Passed = true
		return rep, nil
	}
	step := c.Step
	if step <= 0 {
		step = defaultStep()
	}
	for i := range c.Cases {
		gc := &c.Cases[i]
		feat, err := ResolveFeatures(&gc.Req, step)
		if err != nil {
			return rep, fmt.Errorf("serve: canary case %d unusable: %w", i, err)
		}
		start := time.Now()
		sel := m.Select(feat)
		lat := time.Since(start)
		rep.Cases++
		if lat > rep.MaxLatency {
			rep.MaxLatency = lat
		}
		if c.MaxLatency > 0 && lat > c.MaxLatency {
			return rep, fmt.Errorf("serve: canary case %d breached the latency SLO: %v > %v",
				i, lat, c.MaxLatency)
		}
		if sel.Degraded() {
			return rep, fmt.Errorf("serve: canary case %d degraded past the candidate predictor: %s",
				i, sel.Fallbacks[0])
		}
		if gc.WantM != nil && sel.M != *gc.WantM {
			rep.Mismatches++
			if rep.Mismatches > c.MaxMismatches {
				return rep, fmt.Errorf(
					"serve: canary case %d mismatched the golden answer (%d mismatches > %d allowed)",
					i, rep.Mismatches, c.MaxMismatches)
			}
		}
	}
	rep.Passed = true
	return rep, nil
}

// LoadGoldenSet reads a JSON golden set: an array of {"request": ...,
// "m": ...} objects (the m field optional), as written by
// SaveGoldenSet.
func LoadGoldenSet(path string) ([]GoldenCase, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: golden set: %w", err)
	}
	var cases []GoldenCase
	if err := json.Unmarshal(data, &cases); err != nil {
		return nil, fmt.Errorf("serve: golden set %s: %w", path, err)
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("serve: golden set %s is empty", path)
	}
	return cases, nil
}

// SaveGoldenSet writes cases as the JSON format LoadGoldenSet reads,
// through the atomic temp+fsync+rename path: a golden set — the gate
// every future reload must pass — can never be left half-written.
func SaveGoldenSet(path string, cases []GoldenCase) error {
	data, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(path, "golden", nil, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
}

// RecordGoldenSet snapshots a reference model's answers over the given
// requests, producing strict golden cases: future reloads must agree
// with the reference's behaviour on these characterizations.
func RecordGoldenSet(ref *Model, reqs []PredictRequest, step float64) ([]GoldenCase, error) {
	if step <= 0 {
		step = defaultStep()
	}
	cases := make([]GoldenCase, 0, len(reqs))
	for i := range reqs {
		feat, err := ResolveFeatures(&reqs[i], step)
		if err != nil {
			return nil, fmt.Errorf("serve: golden request %d: %w", i, err)
		}
		sel := ref.Select(feat)
		m := sel.M
		cases = append(cases, GoldenCase{Req: reqs[i], WantM: &m})
	}
	return cases, nil
}

// DefaultGoldenRequests synthesizes a deterministic held-out request mix
// over the benchmark catalog with paper-plausible graph magnitudes —
// the canary workload used when no -canary-set file is given.
func DefaultGoldenRequests(n int, seed int64) []PredictRequest {
	if n <= 0 {
		n = 32
	}
	rng := rand.New(rand.NewSource(seed))
	benches := algo.All()
	reqs := make([]PredictRequest, n)
	for i := range reqs {
		b := benches[i%len(benches)]
		v := int64(1e5 * (1 + rng.Float64()*1000))
		reqs[i] = PredictRequest{
			Bench:     b.Name,
			Vertices:  v,
			Edges:     v * (2 + int64(rng.Intn(40))),
			MaxDegree: int64(10 + rng.Intn(300000)),
			Diameter:  int64(5 + rng.Intn(4000)),
		}
	}
	return reqs
}
