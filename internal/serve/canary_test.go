package serve

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/train"
)

// saveDB writes a training database to a temp file and returns its path.
func saveDB(t *testing.T, db *train.DB) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.hmdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// stableM returns a mapping that survives the Normalize/FromNormalized
// round trip unchanged, so a DB-lookup model can reproduce it exactly.
func stableM(limits config.Limits, m config.M) config.M {
	return config.FromNormalized(m.Clamp(limits).Normalize(limits), limits)
}

// goldenFixture registers a fixed reference model and records a strict
// golden set from it, returning the registry, the canary config and the
// golden feature/answer pairs for building agreeing or disagreeing DBs.
func goldenFixture(t *testing.T) (*Registry, *CanaryConfig, []GoldenCase) {
	t.Helper()
	r := NewRegistry(machine.PrimaryPair())
	limits := r.Pair().Limits()
	ref, err := r.Register("live", "v1", fixedPred{m: stableM(limits, config.DefaultGPU(limits))})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := RecordGoldenSet(ref, DefaultGoldenRequests(8, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	return r, &CanaryConfig{Cases: cases, MaxLatency: time.Second}, cases
}

// dbForGolden builds a database answering exactly m for every golden
// characterization, so canary agreement (or disagreement) is controlled.
func dbForGolden(t *testing.T, r *Registry, cases []GoldenCase, m config.M) *train.DB {
	t.Helper()
	limits := r.Pair().Limits()
	db := &train.DB{Pair: r.Pair(), Limits: limits}
	for i := range cases {
		feat, err := ResolveFeatures(&cases[i].Req, defaultStep())
		if err != nil {
			t.Fatal(err)
		}
		db.Samples = append(db.Samples, predict.Sample{
			Features: feat,
			Target:   m.Clamp(limits).Normalize(limits),
		})
	}
	return db
}

// A candidate that agrees with the golden set installs; one that answers
// a different (but valid, deployable) mapping is rejected with
// ErrCanaryRejected, quarantined, and never becomes the active snapshot.
func TestReloadCanaryAcceptsAgreeingRejectsWrongModel(t *testing.T) {
	r, canary, cases := goldenFixture(t)
	limits := r.Pair().Limits()
	before, _ := r.Get("live")

	good := saveDB(t, dbForGolden(t, r, cases, stableM(limits, config.DefaultGPU(limits))))
	m, rep, err := r.ReloadDBValidated("live", good, canary)
	if err != nil {
		t.Fatalf("agreeing candidate rejected: %v (report %+v)", err, rep)
	}
	if !rep.Passed || rep.Cases != len(cases) || rep.Mismatches != 0 {
		t.Fatalf("pass report %+v", rep)
	}
	if active, _ := r.Get("live"); active != m {
		t.Fatal("passing candidate not installed")
	}
	if lg := r.LastGood("live"); lg != before {
		t.Fatal("previous snapshot not retained as last-known-good")
	}

	// The wrong model: loads cleanly, answers valid Ms, disagrees.
	wrong := saveDB(t, dbForGolden(t, r, cases, stableM(limits, config.DefaultMulticore(limits))))
	_, rep, err = r.ReloadDBValidated("live", wrong, canary)
	if err == nil {
		t.Fatal("disagreeing candidate accepted")
	}
	if !errors.Is(err, ErrCanaryRejected) {
		t.Fatalf("error %v does not wrap ErrCanaryRejected", err)
	}
	if rep.Passed || rep.Mismatches == 0 {
		t.Fatalf("fail report %+v", rep)
	}
	if active, _ := r.Get("live"); active != m {
		t.Fatal("rejected candidate disturbed the active snapshot")
	}
	q := r.Quarantined()
	if len(q) != 1 || q[0].Name != "live" || q[0].Version <= m.Version {
		t.Fatalf("quarantine = %+v", q)
	}
}

// A corrupt or empty database reload must error, leave the active
// snapshot serving byte-identical predictions, and leave no trace of the
// rejected version in the prediction cache.
func TestReloadRollbackOnCorruptAndEmptyDB(t *testing.T) {
	r, canary, cases := goldenFixture(t)
	active, _ := r.Get("live")
	feat, err := ResolveFeatures(&cases[0].Req, defaultStep())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(active.Select(feat).M)

	cache := NewCache(64, 2)
	cache.Put(cacheKeyFor(active, feat), cachedPrediction{M: active.Select(feat).M})

	corrupt := filepath.Join(t.TempDir(), "corrupt.hmdb")
	if err := os.WriteFile(corrupt, []byte("HMDBgarbage-truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := saveDB(t, &train.DB{Pair: r.Pair(), Limits: r.Pair().Limits()})

	for _, path := range []string{corrupt, empty} {
		if _, _, err := r.ReloadDBValidated("live", path, canary); err == nil {
			t.Fatalf("bad database %s accepted", path)
		}
		now, _ := r.Get("live")
		if now != active {
			t.Fatalf("bad reload of %s replaced the active snapshot", path)
		}
		gotJSON, _ := json.Marshal(now.Select(feat).M)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("prediction drifted after bad reload: %s != %s", gotJSON, wantJSON)
		}
	}

	// No rejected version may have touched the cache: quarantined
	// versions are strictly greater than the active one, so the only
	// "live" entry a purge can find is the active version's.
	if n := cache.PurgeModel("live"); n != 1 {
		t.Fatalf("cache held %d live entries, want only the active version's", n)
	}
	for _, q := range r.Quarantined() {
		if _, ok := cache.Get(CacheKey{Model: "live", Version: q.Version, Feat: feat.Binary()}); ok {
			t.Fatalf("rejected version %d left a cache entry", q.Version)
		}
	}
	if cache.Len() != 0 {
		t.Fatalf("cache not empty after purging the only model: len=%d", cache.Len())
	}
	if len(r.Quarantined()) != 2 {
		t.Fatalf("quarantine = %+v", r.Quarantined())
	}
}

// Manual rollback reinstates last-known-good; a name that never swapped
// has nothing to roll back to.
func TestRegistryRollback(t *testing.T) {
	r, _, _ := goldenFixture(t)
	if _, err := r.Rollback("live"); err == nil {
		t.Fatal("rollback with no last-known-good succeeded")
	}
	v1, _ := r.Get("live")
	v2, err := r.Register("live", "v2", fixedPred{m: config.DefaultMulticore(r.Pair().Limits())})
	if err != nil {
		t.Fatal(err)
	}
	back, err := r.Rollback("live")
	if err != nil || back != v1 {
		t.Fatalf("rollback = %v, %v", back, err)
	}
	if active, _ := r.Get("live"); active != v1 {
		t.Fatal("rollback did not reinstate v1")
	}
	// The rolled-back-from version becomes the new last-known-good, so a
	// second rollback flips forward again.
	if fwd, err := r.Rollback("live"); err != nil || fwd != v2 {
		t.Fatalf("second rollback = %v, %v", fwd, err)
	}
}

// The canary latency SLO rejects a candidate whose predictor is too slow,
// and a nil canary config admits anything loadable.
func TestCanaryLatencySLOAndNilConfig(t *testing.T) {
	r, _, cases := goldenFixture(t)
	limits := r.Pair().Limits()
	slow, err := r.newModel("live", "slow", &slowPred{
		m: config.DefaultGPU(limits), delay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tight := &CanaryConfig{Cases: cases[:2], MaxLatency: 100 * time.Microsecond}
	if _, err := tight.Validate(slow); err == nil {
		t.Fatal("latency SLO not enforced")
	}
	var nilCfg *CanaryConfig
	rep, err := nilCfg.Validate(slow)
	if err != nil || !rep.Passed {
		t.Fatalf("nil canary config rejected: %v %+v", err, rep)
	}
}

// Golden sets round-trip through disk, and the loader rejects junk.
func TestGoldenSetSaveLoadRoundTrip(t *testing.T) {
	_, _, cases := goldenFixture(t)
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := SaveGoldenSet(path, cases); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGoldenSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(cases) {
		t.Fatalf("loaded %d cases, want %d", len(loaded), len(cases))
	}
	for i := range loaded {
		if *loaded[i].WantM != *cases[i].WantM || loaded[i].Req.Bench != cases[i].Req.Bench {
			t.Fatalf("case %d drifted through disk", i)
		}
	}
	if _, err := LoadGoldenSet(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing golden set accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("[]"), 0o644)
	if _, err := LoadGoldenSet(badPath); err == nil {
		t.Fatal("empty golden set accepted")
	}
}
