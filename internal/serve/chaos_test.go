package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/fault"
	"heteromap/internal/machine"
)

// submitHedged is the chaos tests' Submit helper: unlike submit() it
// resolves the hedge target the way Server.predictOne does.
func submitHedged(ctx context.Context, b *Batcher, r *Registry, name string, f ...float64) (PredictResponse, error) {
	m, err := r.Get(name)
	if err != nil {
		return PredictResponse{}, err
	}
	var feat = testFeature(int(f[0] * 10))
	return b.Submit(ctx, &task{
		model:    m,
		hedge:    r.LastGood(name),
		feat:     feat,
		cacheKey: cacheKeyFor(m, feat),
		done:     make(chan taskResult, 1),
	})
}

// A primary that blows the stage budget is hedged against last-known-good
// and the hedge's (fast) answer is served under the hedge's version.
func TestHedgeWinsWhenPrimarySlow(t *testing.T) {
	pair := machine.PrimaryPair()
	r := NewRegistry(pair)
	limits := pair.Limits()
	fast, err := r.Register("live", "v1-fast", fixedPred{m: config.DefaultGPU(limits)})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := r.Register("live", "v2-slow", &slowPred{m: config.DefaultMulticore(limits), delay: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	b := NewBatcher(NewCache(64, 2), metrics, BatcherConfig{
		Workers: 1, MaxBatch: 1, MaxWait: time.Microsecond, StageBudget: 5 * time.Millisecond,
	})
	t.Cleanup(b.Stop)

	start := time.Now()
	resp, err := submitHedged(context.Background(), b, r, "live", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != fast.Version {
		t.Fatalf("answered by version %d, want hedge %d (slow is %d)",
			resp.Version, fast.Version, slow.Version)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Millisecond {
		t.Fatalf("hedged answer took %v, slower than the slow primary path", elapsed)
	}
	if metrics.Hedges.Load() == 0 || metrics.HedgeWins.Load() == 0 {
		t.Fatalf("hedge metrics: %d hedges, %d wins",
			metrics.Hedges.Load(), metrics.HedgeWins.Load())
	}
	if _, failures := slow.Breaker().Stats(); failures == 0 {
		t.Fatal("budget blow not recorded as a breaker failure")
	}
}

// Repeated SLO violations trip the per-version breaker; once open,
// dispatch routes straight to last-known-good without waiting out the
// budget, and the tripped state is visible in /metrics.
func TestBreakerOpensAndRoutesToLastGood(t *testing.T) {
	pair := machine.PrimaryPair()
	r := NewRegistry(pair)
	r.SetBreakerPolicy(2, 1000)
	limits := pair.Limits()
	fast, _ := r.Register("live", "v1-fast", fixedPred{m: config.DefaultGPU(limits)})
	slow, _ := r.Register("live", "v2-slow", &slowPred{m: config.DefaultMulticore(limits), delay: 60 * time.Millisecond})

	metrics := NewMetrics()
	cache := NewCache(64, 2)
	b := NewBatcher(cache, metrics, BatcherConfig{
		Workers: 1, MaxBatch: 1, MaxWait: time.Microsecond, StageBudget: 5 * time.Millisecond,
	})
	t.Cleanup(b.Stop)

	// Two budget blows (distinct keys so the cache cannot answer) open
	// the breaker.
	for i := 0; i < 2; i++ {
		if _, err := submitHedged(context.Background(), b, r, "live", float64(i)/10); err != nil {
			t.Fatal(err)
		}
	}
	if st := slow.Breaker().State(); st.String() != "open" {
		_, failures := slow.Breaker().Stats()
		t.Fatalf("breaker = %s after %d failures", st, failures)
	}

	start := time.Now()
	resp, err := submitHedged(context.Background(), b, r, "live", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != fast.Version {
		t.Fatalf("open breaker did not route to last-known-good: version %d", resp.Version)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("breaker-routed dispatch still waited %v", elapsed)
	}
	if metrics.BreakerRouted.Load() == 0 {
		t.Fatal("BreakerRouted not counted")
	}

	var sb strings.Builder
	metrics.WritePrometheus(&sb, cache, b.QueueDepth, r.List())
	want := "heteromap_model_breaker_state{model=\"live\",version=\"2\"} 1"
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("tripped breaker not visible in /metrics: missing %q", want)
	}
}

// With no hedge target, a wedged primary degrades to the chain's fixed
// safety default after a bounded grace — the worker never blocks on it.
func TestSafeDefaultBoundsLatencyWithoutHedge(t *testing.T) {
	pair := machine.PrimaryPair()
	r := NewRegistry(pair)
	limits := pair.Limits()
	_, err := r.Register("solo", "v1", &slowPred{m: config.DefaultGPU(limits), delay: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	b := NewBatcher(NewCache(16, 1), metrics, BatcherConfig{
		Workers: 1, MaxBatch: 1, MaxWait: time.Microsecond, StageBudget: 10 * time.Millisecond,
	})
	t.Cleanup(b.Stop)

	start := time.Now()
	resp, err := submitHedged(context.Background(), b, r, "solo", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 200*time.Millisecond {
		t.Fatalf("safe-default answer took %v, not bounded by the budgets", elapsed)
	}
	if resp.PredictorUsed != "FixedChoice" {
		t.Fatalf("answer came from %q, want the fixed safety default", resp.PredictorUsed)
	}
	if len(resp.Fallbacks) == 0 {
		t.Fatal("safe default did not report the abandonment")
	}
	if metrics.SafeDefaults.Load() == 0 {
		t.Fatal("SafeDefaults not counted")
	}
}

// The watchdog detects a chaos-stalled worker and spawns a replacement;
// every request is still answered.
func TestWatchdogReplacesStalledWorker(t *testing.T) {
	pair := machine.PrimaryPair()
	r := NewRegistry(pair)
	limits := pair.Limits()
	if _, err := r.Register("live", "v1", fixedPred{m: config.DefaultGPU(limits)}); err != nil {
		t.Fatal(err)
	}
	inj := fault.NewServeInjector(7)
	inj.SetServeProfile(fault.ServeProfile{StallWorkerRate: 1, StallWorkerDelay: 250 * time.Millisecond})

	metrics := NewMetrics()
	b := NewBatcher(NewCache(64, 2), metrics, BatcherConfig{
		Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond,
		StallTimeout: 40 * time.Millisecond, Chaos: inj,
	})
	t.Cleanup(b.Stop)

	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := submitHedged(context.Background(), b, r, "live", float64(i)/10); err != nil {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d requests lost across the stall", failed.Load())
	}
	if metrics.ChaosStalls.Load() == 0 {
		t.Fatal("chaos never injected a stall")
	}
	if metrics.WorkerRestarts.Load() == 0 {
		t.Fatal("watchdog never replaced the stalled worker")
	}
}

// Queue-saturation chaos sheds submissions with ErrQueueFull.
func TestChaosQueueReject(t *testing.T) {
	pair := machine.PrimaryPair()
	r := NewRegistry(pair)
	if _, err := r.Register("live", "v1", fixedPred{m: config.DefaultGPU(pair.Limits())}); err != nil {
		t.Fatal(err)
	}
	inj := fault.NewServeInjector(7)
	inj.SetServeProfile(fault.ServeProfile{QueueRejectRate: 1})
	metrics := NewMetrics()
	b := NewBatcher(NewCache(16, 1), metrics, BatcherConfig{Workers: 1, Chaos: inj})
	t.Cleanup(b.Stop)

	if _, err := submitHedged(context.Background(), b, r, "live", 0.2); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if metrics.ChaosQueueReject.Load() != 1 || metrics.QueueFull.Load() != 1 {
		t.Fatalf("chaos reject metrics: %d chaos, %d queue-full",
			metrics.ChaosQueueReject.Load(), metrics.QueueFull.Load())
	}
}

// The /v1/chaos endpoint: 409 without an injector; GET/POST round-trip
// the profile when armed; injected corrupt reloads are quarantined.
func TestChaosEndpoint(t *testing.T) {
	_, tsOff := newTestServer(t, Options{})
	resp, err := http.Get(tsOff.URL + "/v1/chaos")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("chaos without injector: status %d", resp.StatusCode)
	}

	inj := fault.NewServeInjector(11)
	s, ts := newTestServer(t, Options{Chaos: inj})
	resp, body := postJSON(t, ts.URL+"/v1/chaos", chaosRequest{CorruptReloadRate: 1, SlowModelRate: 0.5, SlowModelMS: 10})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos POST: %d %s", resp.StatusCode, body)
	}
	if p := inj.ServeProfile(); p.CorruptReloadRate != 1 || p.SlowModelDelay != 10*time.Millisecond {
		t.Fatalf("profile not applied: %+v", p)
	}

	resp, err = http.Get(ts.URL + "/v1/chaos")
	if err != nil {
		t.Fatal(err)
	}
	var got chaosRequest
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.CorruptReloadRate != 1 || got.SlowModelMS != 10 {
		t.Fatalf("chaos GET = %+v", got)
	}

	// Every reload is now corrupted in flight: 422 plus a quarantine
	// record, with the active model untouched.
	before := s.Registry().List()
	resp, body = postJSON(t, ts.URL+"/v1/reload", reloadRequest{Model: "tree", Path: "/ignored"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt-reload chaos: %d %s", resp.StatusCode, body)
	}
	if q := s.Registry().Quarantined(); len(q) != 1 || !strings.Contains(q[0].Reason, "chaos") {
		t.Fatalf("quarantine = %+v", q)
	}
	after := s.Registry().List()
	if len(after) != len(before) || after[0].Version != before[0].Version {
		t.Fatalf("chaos reload disturbed the registry: %+v -> %+v", before, after)
	}
}

// Oversized bodies are rejected with 413 before decoding; non-finite and
// out-of-range raw feature vectors with 400.
func TestRequestAdmissionLimits(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 256})
	huge := `{"bench":"` + strings.Repeat("x", 4096) + `"}`
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}

	for _, body := range []string{
		`{"features":[null,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1,0,0.1,0.2,0.3,0.4,1e400]}`,
		`{"features":[-0.5,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1,0,0.1,0.2,0.3,0.4,0.5]}`,
		`{"features":[1.5,0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1,0,0.1,0.2,0.3,0.4,0.5]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// Under seeded rotating chaos the server keeps answering: availability
// stays at or above 99%, latency stays bounded, faults actually fired,
// and /healthz still answers 200 afterwards — the chaos-smoke criterion.
func TestChaosLoadGenAvailability(t *testing.T) {
	inj := fault.NewServeInjector(23)
	_, ts := newTestServer(t, Options{Chaos: inj, StallTimeout: 100 * time.Millisecond})

	res, err := RunLoadGen(LoadGenOptions{
		URL:         ts.URL,
		Duration:    700 * time.Millisecond,
		Concurrency: 4,
		Combos:      16,
		Seed:        23,
		Chaos:       true,
		ChaosRate:   0.3,
		ChaosFlip:   120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no traffic ran")
	}
	if res.Availability < 0.99 {
		t.Fatalf("availability %.4f below 0.99: %+v", res.Availability, res)
	}
	if res.ChaosInjected == 0 {
		t.Fatalf("chaos never fired: %+v", res)
	}
	if res.ServerP99 > 2*time.Second {
		t.Fatalf("p99 unbounded under chaos: %v", res.ServerP99)
	}
	if !strings.Contains(res.String(), "availability") ||
		!strings.Contains(res.String(), "self-healing") {
		t.Fatalf("report missing resilience lines:\n%s", res)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %d", resp.StatusCode)
	}
	// The flipper's exit leaves the profile calm.
	if inj.ServeProfile().Active() {
		t.Fatalf("chaos profile not reset: %v", inj.ServeProfile())
	}
}

// The acceptance integration: bad reloads interleaved with live traffic
// error out, auto-roll back, and served predictions stay byte-identical
// throughout.
func TestBadReloadsUnderLoadKeepPredictionsIdentical(t *testing.T) {
	pair := machine.PrimaryPair()
	s, ts := newTestServer(t, Options{Pair: pair, Canary: &CanaryConfig{
		MaxLatency: time.Second,
	}})

	reqs := make([]PredictRequest, 6)
	for i := range reqs {
		reqs[i] = PredictRequest{
			Model: "tree", Bench: "BFS",
			Vertices: int64(1e6 * (i + 1)), Edges: int64(2e7 * (i + 1)),
			MaxDegree: 5000, Diameter: 100,
		}
	}
	baseline := make([]string, len(reqs))
	for i, req := range reqs {
		resp, body := postJSON(t, ts.URL+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %d: %d %s", i, resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		mj, _ := json.Marshal(pr.M)
		baseline[i] = string(mj)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var reloadAttempts atomic.Int64

	// Reloader: hammer /v1/reload with files that must be rejected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			resp, _ := postJSON(t, ts.URL+"/v1/reload",
				reloadRequest{Model: "tree", Path: "/does/not/exist.hmdb"})
			if resp.StatusCode == http.StatusOK {
				t.Error("bad reload accepted")
				return
			}
			reloadAttempts.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Clients: replay the request set and demand byte-identical answers.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := (c + i) % len(reqs)
				resp, body := postJSON(t, ts.URL+"/v1/predict", reqs[k])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: %d %s", c, resp.StatusCode, body)
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				mj, _ := json.Marshal(pr.M)
				if string(mj) != baseline[k] {
					t.Errorf("client %d: prediction drifted during bad reloads:\n got %s\nwant %s",
						c, mj, baseline[k])
					return
				}
			}
		}(c)
	}

	time.Sleep(250 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if reloadAttempts.Load() < 5 {
		t.Fatalf("only %d reload attempts ran", reloadAttempts.Load())
	}
	if len(s.Registry().Quarantined()) == 0 {
		t.Fatal("rejected reloads left no quarantine records")
	}
	if s.Metrics().ReloadRejected.Load() == 0 {
		t.Fatal("ReloadRejected never counted")
	}
	// /v1/models must expose both the healthy model and the quarantine.
	resp, body := postJSON(t, ts.URL+"/v1/predict", reqs[0])
	resp.Body.Close()
	var pr PredictResponse
	json.Unmarshal(body, &pr)
	mresp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models struct {
		Models     []ModelInfo      `json:"models"`
		Quarantine []QuarantineInfo `json:"quarantine"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if len(models.Models) != 1 || models.Models[0].Version != pr.Version {
		t.Fatalf("models = %+v, serving version %d", models.Models, pr.Version)
	}
	if len(models.Quarantine) == 0 {
		t.Fatal("/v1/models hides the quarantine")
	}
}
