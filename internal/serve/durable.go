package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/durable"
	"heteromap/internal/feature"
)

// Serving-tier durability: the prediction cache and the registry's
// version counter snapshot periodically to <DurableDir>/cache.snap (a
// sealed durable container), and RecoverDurable restores both on
// restart so a rebooted node answers its first requests warm instead of
// sweeping the predictor for every cell again.
//
// Cache entries are persisted under (model name, feature key) — not the
// live cache key, which embeds a version number that will not survive
// the restart. Recovery first raises the registry version counter to
// the persisted floor and restamps every already-registered model above
// it, then rebuilds each entry's key against the model's post-restart
// version. Entries for models no longer registered are dropped and
// counted.
const (
	cacheSnapshotKind = "serve-cache"
	cacheSnapshotFile = "cache.snap"
)

// serveSnapshotMeta is record 0 of a cache snapshot.
type serveSnapshotMeta struct {
	// VersionFloor is the registry version counter at snapshot time.
	VersionFloor uint64 `json:"version_floor"`
}

// cacheSnapshotEntry is one persisted prediction (records 1..n).
type cacheSnapshotEntry struct {
	Model   string   `json:"model"`
	FeatKey string   `json:"feat_key"`
	Used    string   `json:"used"`
	M       config.M `json:"m"`
}

// ServeDurableStats is the serving tier's durability picture, exposed
// at /metrics and returned by RecoverDurable.
type ServeDurableStats struct {
	Enabled bool `json:"enabled"`
	// CacheRestored / CacheDropped count snapshot entries readmitted to
	// the cache vs dropped (unregistered model, undecodable record).
	CacheRestored int `json:"cache_restored"`
	CacheDropped  int `json:"cache_dropped"`
	// SnapshotRestored reports whether a cache snapshot was restored.
	SnapshotRestored bool `json:"snapshot_restored"`
	// VersionFloor is the registry version counter restored from the
	// snapshot (0: none).
	VersionFloor uint64 `json:"version_floor"`
	// Restamped counts models reissued above the restored floor.
	Restamped int `json:"restamped"`
	// Snapshots / SnapshotErrors count periodic cache snapshots since
	// start.
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// Quarantines counts snapshot files moved aside for failing
	// integrity verification.
	Quarantines uint64 `json:"quarantines"`
	// StaleTemps counts orphaned temp files swept at startup.
	StaleTemps int `json:"stale_temps_removed"`
}

// serveDurable is the server's durability bookkeeping.
type serveDurable struct {
	mu    sync.Mutex
	stats ServeDurableStats
	stop  chan struct{}
	done  chan struct{}
}

// RecoverDurable climbs the serving tier's recovery ladder: sweep stale
// temps, restore the cache snapshot (quarantining it on any integrity
// failure), raise the registry version floor and restamp models above
// it, readmit cache entries against post-restart versions, and start
// the periodic snapshot loop. Call it after registering models; without
// a DurableDir it is a no-op. Safe to call once per server.
func (s *Server) RecoverDurable() ServeDurableStats {
	dir := s.opts.DurableDir
	if dir == "" {
		return ServeDurableStats{}
	}
	var st ServeDurableStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st
	}
	st.Enabled = true
	st.StaleTemps = durable.RemoveStaleTemps(dir)

	path := filepath.Join(dir, cacheSnapshotFile)
	recs, err := durable.ReadContainer(path, cacheSnapshotKind)
	switch {
	case err == nil && len(recs) >= 1:
		var meta serveSnapshotMeta
		if jerr := json.Unmarshal(recs[0], &meta); jerr != nil {
			if _, qerr := durable.QuarantineFile(path); qerr == nil {
				st.Quarantines++
			}
			break
		}
		st.SnapshotRestored = true
		st.VersionFloor = meta.VersionFloor
		s.registry.EnsureVersionFloor(meta.VersionFloor)
		for _, info := range s.registry.List() {
			if info.Version <= meta.VersionFloor {
				if _, rerr := s.registry.Restamp(info.Name); rerr == nil {
					st.Restamped++
				}
			}
		}
		for _, rec := range recs[1:] {
			var e cacheSnapshotEntry
			if jerr := json.Unmarshal(rec, &e); jerr != nil {
				st.CacheDropped++
				continue
			}
			m, gerr := s.registry.Get(e.Model)
			if gerr != nil {
				st.CacheDropped++
				continue
			}
			// The snapshot carries the wire-format string key; the live
			// cache is keyed on its binary form. An unparsable key is a
			// corrupt record, not a fatal snapshot.
			feat, perr := feature.ParseKey(e.FeatKey)
			if perr != nil {
				st.CacheDropped++
				continue
			}
			s.cache.Put(cacheKeyFor(m, feat), cachedPrediction{M: e.M, Used: e.Used})
			st.CacheRestored++
		}
	case err != nil && !os.IsNotExist(err):
		if _, qerr := durable.QuarantineFile(path); qerr == nil {
			st.Quarantines++
		}
	}

	s.dur.mu.Lock()
	s.dur.stats = st
	s.dur.mu.Unlock()
	if s.opts.CacheSnapshotEvery > 0 {
		s.startSnapshotLoop()
	}
	return st
}

// SnapshotCache persists the prediction cache and the registry version
// counter as one sealed container. A crash at any byte of the write
// leaves the previous snapshot byte-intact.
func (s *Server) SnapshotCache() error {
	dir := s.opts.DurableDir
	if dir == "" {
		return fmt.Errorf("serve: durability disabled")
	}
	meta := serveSnapshotMeta{VersionFloor: s.registry.VersionCounter()}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	entries := s.cache.export()
	recs := make([][]byte, 0, len(entries)+1)
	recs = append(recs, metaJSON)
	for _, e := range entries {
		// Persist the wire-format string key (the snapshot format
		// predates the binary key and must survive restarts across
		// versions); an entry whose binary key does not decode to a
		// valid vector cannot be represented and is skipped.
		feat, ferr := feature.FromBinary(e.key.Feat)
		if ferr != nil {
			continue
		}
		rec, jerr := json.Marshal(cacheSnapshotEntry{
			Model: e.key.Model, FeatKey: feat.Key(), Used: e.val.Used, M: e.val.M,
		})
		if jerr != nil {
			continue
		}
		recs = append(recs, rec)
	}
	path := filepath.Join(dir, cacheSnapshotFile)
	err = durable.WriteContainer(path, cacheSnapshotKind, recs, "cache", s.opts.Kill)
	s.dur.mu.Lock()
	if err != nil {
		s.dur.stats.SnapshotErrors++
	} else {
		s.dur.stats.Snapshots++
	}
	s.dur.mu.Unlock()
	return err
}

// DurableStats returns the serving tier's current durability picture.
func (s *Server) DurableStats() ServeDurableStats {
	s.dur.mu.Lock()
	defer s.dur.mu.Unlock()
	return s.dur.stats
}

// startSnapshotLoop runs SnapshotCache on the configured cadence until
// stopSnapshotLoop (Shutdown takes a final snapshot; Kill just aborts,
// exactly like the crash it stands in for).
func (s *Server) startSnapshotLoop() {
	s.dur.mu.Lock()
	if s.dur.stop != nil {
		s.dur.mu.Unlock()
		return
	}
	s.dur.stop = make(chan struct{})
	s.dur.done = make(chan struct{})
	stop, done := s.dur.stop, s.dur.done
	s.dur.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(s.opts.CacheSnapshotEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.SnapshotCache()
			}
		}
	}()
}

func (s *Server) stopSnapshotLoop() {
	s.dur.mu.Lock()
	stop, done := s.dur.stop, s.dur.done
	s.dur.stop, s.dur.done = nil, nil
	s.dur.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// writeDurableMetrics appends the serving tier's durability exposition
// (additive, after the core and online expositions).
func (s *Server) writeDurableMetrics(w interface{ Write([]byte) (int, error) }) {
	d := s.DurableStats()
	fmt.Fprintf(w, "# HELP heteromap_serve_cache_restored Cache entries readmitted from the durable snapshot at startup.\n")
	fmt.Fprintf(w, "# TYPE heteromap_serve_cache_restored gauge\n")
	fmt.Fprintf(w, "heteromap_serve_cache_restored %d\n", d.CacheRestored)
	fmt.Fprintf(w, "# HELP heteromap_serve_cache_snapshots_total Periodic cache snapshots taken since start.\n")
	fmt.Fprintf(w, "# TYPE heteromap_serve_cache_snapshots_total counter\n")
	fmt.Fprintf(w, "heteromap_serve_cache_snapshots_total %d\n", d.Snapshots)
	fmt.Fprintf(w, "# HELP heteromap_serve_cache_snapshot_errors_total Failed cache snapshot attempts.\n")
	fmt.Fprintf(w, "# TYPE heteromap_serve_cache_snapshot_errors_total counter\n")
	fmt.Fprintf(w, "heteromap_serve_cache_snapshot_errors_total %d\n", d.SnapshotErrors)
	fmt.Fprintf(w, "# HELP heteromap_serve_version_floor_restored Registry version floor restored from the durable snapshot.\n")
	fmt.Fprintf(w, "# TYPE heteromap_serve_version_floor_restored gauge\n")
	fmt.Fprintf(w, "heteromap_serve_version_floor_restored %d\n", d.VersionFloor)
	fmt.Fprintf(w, "# HELP heteromap_serve_durable_quarantines_total Serving-tier artifacts quarantined for failing verification.\n")
	fmt.Fprintf(w, "# TYPE heteromap_serve_durable_quarantines_total counter\n")
	fmt.Fprintf(w, "heteromap_serve_durable_quarantines_total %d\n", d.Quarantines)
}
