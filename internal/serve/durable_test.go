package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/durable"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
)

// durableServer builds a server with the decision tree registered and
// durability enabled on dir, then runs the recovery ladder.
func durableServer(t *testing.T, dir string, kill durable.KillFunc) *Server {
	t.Helper()
	pair := machine.PrimaryPair()
	s := New(Options{Pair: pair, DurableDir: dir, Kill: kill})
	if _, err := s.Registry().Register("tree", "builtin decision tree",
		dtree.New(pair.Limits())); err != nil {
		t.Fatal(err)
	}
	s.RecoverDurable()
	return s
}

// fillCache puts n predictions into the server's cache under the
// registered tree model's live version and returns the feature vectors.
func fillCache(t *testing.T, s *Server, n int) []feature.Vector {
	t.Helper()
	model, err := s.Registry().Get("tree")
	if err != nil {
		t.Fatal(err)
	}
	limits := s.Registry().Pair().Limits()
	feats := make([]feature.Vector, n)
	for i := range feats {
		var f feature.Vector
		f[0] = float64(i%7) / 10
		f[1] = float64(i%5) / 10
		f[13] = float64(i%3) / 10
		feats[i] = f
		s.cache.Put(cacheKeyFor(model, f), cachedPrediction{
			M: config.DefaultGPU(limits), Used: "DTree",
		})
	}
	return feats
}

// The snapshot wire format carries the string feature key while the live
// cache is keyed binary; a snapshot record whose key does not parse is
// dropped and counted rather than poisoning the restore.
func TestCacheSnapshotRejectsBadFeatKey(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	fillCache(t, s, 2)
	if err := s.SnapshotCache(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the snapshot with one record's key corrupted.
	path := filepath.Join(dir, cacheSnapshotFile)
	recs, err := durable.ReadContainer(path, cacheSnapshotKind)
	if err != nil {
		t.Fatal(err)
	}
	var e cacheSnapshotEntry
	if err := json.Unmarshal(recs[1], &e); err != nil {
		t.Fatal(err)
	}
	e.FeatKey = "not,a,key"
	bad, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	recs[1] = bad
	if err := durable.WriteContainer(path, cacheSnapshotKind, recs, "cache", nil); err != nil {
		t.Fatal(err)
	}

	s2 := durableServer(t, dir, nil)
	st := s2.DurableStats()
	if st.CacheRestored != 1 {
		t.Fatalf("restored %d entries, want 1", st.CacheRestored)
	}
	if st.CacheDropped != 1 {
		t.Fatalf("dropped %d entries, want 1 (the corrupted key)", st.CacheDropped)
	}
}

// TestCacheSnapshotWarmRestart: a restarted server restores its cache
// entries remapped to post-restart model versions, and the registry
// version counter never falls below the pre-crash floor.
func TestCacheSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	feats := fillCache(t, s, 24)
	preVersion := s.Registry().VersionCounter()
	if err := s.SnapshotCache(); err != nil {
		t.Fatal(err)
	}
	// Simulated kill -9: the server is abandoned, no Shutdown.

	s2 := durableServer(t, dir, nil)
	st := s2.DurableStats()
	if !st.SnapshotRestored {
		t.Fatal("restart did not restore the cache snapshot")
	}
	if st.CacheRestored != 24 {
		t.Fatalf("restored %d cache entries, want 24", st.CacheRestored)
	}
	if st.VersionFloor != preVersion {
		t.Fatalf("version floor %d, want %d", st.VersionFloor, preVersion)
	}
	// Version monotonicity across the crash: the restamped model's
	// version exceeds every pre-crash version.
	m2, err := s2.Registry().Get("tree")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version <= preVersion {
		t.Fatalf("post-restart version %d did not clear pre-crash floor %d", m2.Version, preVersion)
	}
	if st.Restamped == 0 {
		t.Fatal("no model was restamped above the restored floor")
	}
	// The restored entries are live hits under the NEW version's keys.
	hitsBefore, _, _ := s2.cache.Stats()
	for _, f := range feats {
		if _, ok := s2.cache.Get(cacheKeyFor(m2, f)); !ok {
			t.Fatalf("restored cache missed feature %v", f)
		}
	}
	hitsAfter, _, _ := s2.cache.Stats()
	if hitsAfter-hitsBefore != uint64(len(feats)) {
		t.Fatalf("warm restart hit %d of %d restored cells", hitsAfter-hitsBefore, len(feats))
	}
}

// TestCacheSnapshotDropsUnknownModels: entries for a model the restarted
// process never registered are dropped and counted, not resurrected.
func TestCacheSnapshotDropsUnknownModels(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	fillCache(t, s, 4)
	// A second model's entries ride the same snapshot.
	pair := s.Registry().Pair()
	if _, err := s.Registry().Register("ghost", "test", dtree.New(pair.Limits())); err != nil {
		t.Fatal(err)
	}
	ghost, _ := s.Registry().Get("ghost")
	var f feature.Vector
	f[2] = 0.9
	s.cache.Put(cacheKeyFor(ghost, f), cachedPrediction{M: config.DefaultGPU(pair.Limits()), Used: "DTree"})
	if err := s.SnapshotCache(); err != nil {
		t.Fatal(err)
	}

	s2 := durableServer(t, dir, nil) // registers only "tree"
	st := s2.DurableStats()
	if st.CacheRestored != 4 {
		t.Fatalf("restored %d entries, want 4", st.CacheRestored)
	}
	if st.CacheDropped != 1 {
		t.Fatalf("dropped %d entries, want 1 (the ghost model's)", st.CacheDropped)
	}
}

// TestCacheSnapshotKillSweep: a crash at every byte offset of the cache
// snapshot write leaves the committed snapshot byte-intact; a final
// unkilled snapshot commits cleanly over the litter.
func TestCacheSnapshotKillSweep(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	fillCache(t, s, 8)
	if err := s.SnapshotCache(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, cacheSnapshotFile)
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(before))
	stride := int64(1)
	if testing.Short() {
		stride = 41
	}
	for off := int64(0); off <= size; off += stride {
		armed := off
		s.opts.Kill = func(target string) (int64, bool) {
			if target != "cache" {
				return 0, false
			}
			return armed, true
		}
		err := s.SnapshotCache()
		if err == nil {
			t.Fatalf("offset %d: killed snapshot reported success", off)
		}
		if !errors.Is(err, durable.ErrKilled) {
			t.Fatalf("offset %d: unexpected error %v", off, err)
		}
		after, rerr := os.ReadFile(snapPath)
		if rerr != nil {
			t.Fatalf("offset %d: committed snapshot unreadable: %v", off, rerr)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("offset %d: killed snapshot mutated the committed snapshot", off)
		}
	}
	s.opts.Kill = nil
	if err := s.SnapshotCache(); err != nil {
		t.Fatal(err)
	}
	s2 := durableServer(t, dir, nil)
	if st := s2.DurableStats(); !st.SnapshotRestored || st.CacheRestored != 8 {
		t.Fatalf("post-sweep restart stats %+v, want 8 restored", st)
	}
}

// TestCorruptCacheSnapshotQuarantined: bit rot in the snapshot means a
// cold (but correct) start, with the evidence moved aside.
func TestCorruptCacheSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	fillCache(t, s, 6)
	if err := s.SnapshotCache(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, cacheSnapshotFile)
	data, _ := os.ReadFile(snapPath)
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := durableServer(t, dir, nil)
	st := s2.DurableStats()
	if st.SnapshotRestored {
		t.Fatal("corrupt snapshot restored as valid")
	}
	if st.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", st.Quarantines)
	}
	if s2.cache.Len() != 0 {
		t.Fatal("corrupt snapshot populated the cache")
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot still at its serving path")
	}
}

// TestGoldenSetSaveAtomic: SaveGoldenSet goes through the atomic write
// path — round-trips, leaves no temp litter, and a failed save leaves
// the previous set untouched.
func TestGoldenSetSaveAtomic(t *testing.T) {
	pair := machine.PrimaryPair()
	reg := NewRegistry(pair)
	ref, err := reg.Register("tree", "test", dtree.New(pair.Limits()))
	if err != nil {
		t.Fatal(err)
	}
	cases, err := RecordGoldenSet(ref, DefaultGoldenRequests(8, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "golden.json")
	if err := SaveGoldenSet(path, cases); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGoldenSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(cases) {
		t.Fatalf("loaded %d cases, want %d", len(loaded), len(cases))
	}
	before, _ := os.ReadFile(path)
	// A save into a missing directory fails before any rename...
	if err := SaveGoldenSet(filepath.Join(dir, "missing", "golden.json"), cases); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	// ...and the committed set is untouched, with no temp litter.
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("failed save mutated the committed golden set")
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "golden.json" {
			t.Fatalf("unexpected file %s after atomic save", e.Name())
		}
	}
}
