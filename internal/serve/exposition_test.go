package serve

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// nastyModelName exercises every label-escaping rule at once: an
// embedded quote, a backslash and a raw newline.
const nastyModelName = "na\"ughty\\mo\ndel"

// goldenMetrics builds a fully deterministic exposition fixture: every
// counter pinned, every histogram fed fixed durations, the cache warmed
// to known stats, and a model listing that needs escaping.
func goldenMetrics() (*Metrics, *Cache, []ModelInfo) {
	m := NewMetrics()
	m.Requests.Store(7)
	m.HTTPErrors.Store(1)
	m.QueueFull.Store(2)
	m.Batches.Store(3)
	m.BatchItems.Store(5)
	m.Fallbacks.Store(1)
	m.ReloadCount.Store(1)
	m.ReloadRejected.Store(1)
	m.CanaryRuns.Store(2)
	m.Hedges.Store(1)
	m.HedgeWins.Store(1)
	m.BreakerRouted.Store(1)
	m.SafeDefaults.Store(1)
	m.DeadlineDrops.Store(1)
	m.WorkerRestarts.Store(1)
	m.InFlight.Store(2)

	m.RequestLatency.ObserveTraced(10*time.Millisecond, "golden-1")
	m.RequestLatency.Observe(20 * time.Microsecond)
	m.QueueWait.Observe(50 * time.Microsecond)
	m.ShedWait.Observe(100 * time.Millisecond)
	m.BatchAssembly.Observe(5 * time.Microsecond)
	m.CacheLookup.Observe(5 * time.Microsecond)
	m.Inference.ObserveTraced(250*time.Microsecond, "golden-2")
	m.ObserveModel("tree", 25*time.Microsecond)
	m.ObserveModel(nastyModelName, time.Millisecond)

	c := NewCache(8, 2)
	c.Put(ck("k1"), cachedPrediction{})
	c.Get(ck("k1"))
	c.Get(ck("absent"))

	models := []ModelInfo{
		{Name: "tree", Version: 1, Breaker: "closed"},
		{Name: nastyModelName, Version: 3, Breaker: "open"},
	}
	return m, c, models
}

func goldenExposition() string {
	m, c, models := goldenMetrics()
	var sb strings.Builder
	m.WritePrometheus(&sb, c, func() int { return 4 }, models)
	return sb.String()
}

// The full /metrics exposition is pinned byte for byte against a golden
// file (regenerate with `go test ./internal/serve -run Golden -update`),
// so any accidental format drift — family ordering, help text, label
// rendering, exemplar series — fails loudly.
func TestPrometheusExpositionGolden(t *testing.T) {
	got := goldenExposition()
	golden := filepath.Join("testdata", "metrics_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("exposition drift at line %d:\n got %q\nwant %q", i+1, g, w)
		}
	}
}

// Label values are escaped per the text-format rules (\" \\ \n), so a
// hostile model name can never break a scrape: every non-comment line
// still starts with a metric name.
func TestPrometheusLabelEscaping(t *testing.T) {
	out := goldenExposition()
	if want := `model="na\"ughty\\mo\ndel"`; !strings.Contains(out, want) {
		t.Fatalf("escaped model label %s missing from exposition", want)
	}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "heteromap_") {
			t.Fatalf("line %d does not start with a metric name (broken escaping?): %q", i+1, line)
		}
	}
}

// Every histogram series emits its buckets with strictly ascending le
// bounds, nondecreasing cumulative counts, and +Inf last.
func TestPrometheusBucketOrdering(t *testing.T) {
	type bucket struct {
		le  float64 // -1 = +Inf
		cum uint64
	}
	series := map[string][]bucket{}
	var order []string
	for _, line := range strings.Split(goldenExposition(), "\n") {
		leIdx := strings.Index(line, `le="`)
		if !strings.Contains(line, "_bucket{") || leIdx < 0 {
			continue
		}
		key := line[:leIdx]
		rest := line[leIdx+len(`le="`):]
		end := strings.Index(rest, `"`)
		if end < 0 {
			t.Fatalf("unterminated le label: %q", line)
		}
		le := -1.0
		if rest[:end] != "+Inf" {
			var err error
			if le, err = strconv.ParseFloat(rest[:end], 64); err != nil {
				t.Fatalf("bad le %q in %q: %v", rest[:end], line, err)
			}
		}
		cum, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", line, err)
		}
		if _, ok := series[key]; !ok {
			order = append(order, key)
		}
		series[key] = append(series[key], bucket{le: le, cum: cum})
	}
	if len(order) < 8 { // request + 6 stages + at least one per-model
		t.Fatalf("only %d bucket series found", len(order))
	}
	sort.Strings(order)
	for _, key := range order {
		bs := series[key]
		if bs[len(bs)-1].le != -1 {
			t.Fatalf("%s: last bucket is not +Inf", key)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].le != -1 && bs[i].le <= bs[i-1].le {
				t.Fatalf("%s: le not ascending at index %d (%g after %g)", key, i, bs[i].le, bs[i-1].le)
			}
			if bs[i].cum < bs[i-1].cum {
				t.Fatalf("%s: cumulative count decreased at index %d", key, i)
			}
		}
	}
}

// /metrics declares the exposition-format version so Prometheus content
// negotiation works (satellite fix: it previously served bare text/plain).
func TestMetricsContentType(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := resp.Header.Get("Content-Type"); got != want {
		t.Fatalf("Content-Type = %q, want %q", got, want)
	}
}
