package serve

import (
	"testing"

	"heteromap/internal/feature"
)

// The in-process cache-hit fast path is allocation-free: registry
// resolve, binary key build, sharded-LRU hit and metric accounting all
// stay off the heap. This is the same property the hmbench
// serve/predict-cachehit baseline pins at 0 allocs/op — the test keeps
// it enforced in plain `go test` runs too.
func TestPredictCachedZeroAlloc(t *testing.T) {
	s, ts := newTestServer(t, Options{DisableTracing: true})

	var f feature.Vector
	f[0], f[3], f[13] = 0.3, 0.7, 0.5
	// PredictCached takes the already-resolved characterization: the same
	// discretized vector the HTTP path derives server-side.
	f = f.Discretized(feature.DiscretizationStep)
	resp, _ := postJSON(t, ts.URL+"/v1/predict",
		PredictRequest{Model: "tree", Features: f[:]})
	if resp.StatusCode != 200 {
		t.Fatalf("warmup predict returned %d", resp.StatusCode)
	}
	if _, _, _, ok := s.PredictCached("tree", f); !ok {
		t.Fatal("warmed key missed the cache")
	}

	n := testing.AllocsPerRun(1000, func() {
		if _, _, _, ok := s.PredictCached("tree", f); !ok {
			t.Fatal("warmed key missed the cache mid-run")
		}
	})
	if n != 0 {
		t.Fatalf("PredictCached allocated %.1f times per call, want 0", n)
	}

	// The miss path is allocation-free too — a cold probe must not pay
	// for the answer it does not produce.
	var cold feature.Vector
	cold[5] = 0.9
	n = testing.AllocsPerRun(1000, func() {
		if _, _, _, ok := s.PredictCached("tree", cold); ok {
			t.Fatal("cold key hit the cache")
		}
	})
	if n != 0 {
		t.Fatalf("PredictCached miss allocated %.1f times per call, want 0", n)
	}
}
