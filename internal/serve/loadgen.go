package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heteromap/internal/algo"
)

// LoadGenOptions configure a synthetic serving benchmark run.
type LoadGenOptions struct {
	// URL is the server base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// Duration bounds the run (default 2s).
	Duration time.Duration
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// BatchSize > 1 sends batch requests of that size; otherwise each
	// request carries one prediction.
	BatchSize int
	// Model names the registry entry to exercise ("" = default).
	Model string
	// Combos is the size of the synthetic (benchmark, input) pool the
	// mix replays (default 64). Smaller pools mean hotter caches.
	Combos int
	// Seed fixes the request mix.
	Seed int64

	// Stages keeps the server-side per-stage latency attribution
	// (scraped from heteromap_stage_duration_seconds on /metrics) in the
	// report, so client p50/p99 can be read next to where the server
	// actually spent the time.
	Stages bool

	// Drift shifts the request mix mid-run: workers start on the calm
	// social-network-style pool and switch to a road-network-style pool
	// (sparse, high-diameter graphs — the paper's FB-vs-CA dataset
	// split). Offline-trained predictors realize much larger cost gaps
	// on the shifted pool, so a run with Drift set is the workload-shift
	// stimulus for the online learning loop's drift detector.
	Drift bool
	// DriftAfter is when the shift happens (default Duration/2).
	DriftAfter time.Duration

	// Chaos flips the server's serve-fault profile mid-run (via POST
	// /v1/chaos) so the report measures availability under rotating
	// failure modes. The server must be running with chaos enabled.
	Chaos bool
	// Cluster switches the chaos flipper to cluster fault profiles
	// (slow-peer, partition, node-kill) — the shapes a router front-end
	// injects at its forwarding layer. Use when URL points at a cluster
	// router rather than a single node.
	Cluster bool
	// ChaosRate scales the injected fault profiles (default 0.3).
	ChaosRate float64
	// ChaosFlip is the interval between profile changes (default
	// Duration/6, floored at 100ms).
	ChaosFlip time.Duration
}

func (o LoadGenOptions) withDefaults() LoadGenOptions {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.Combos <= 0 {
		o.Combos = 64
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.ChaosRate <= 0 {
		o.ChaosRate = 0.3
	}
	if o.Drift && o.DriftAfter <= 0 {
		o.DriftAfter = o.Duration / 2
	}
	if o.ChaosFlip <= 0 {
		o.ChaosFlip = o.Duration / 6
		if o.ChaosFlip < 100*time.Millisecond {
			o.ChaosFlip = 100 * time.Millisecond
		}
	}
	return o
}

// LoadGenResult summarizes a run: client-side throughput and latency
// quantiles plus the server's own view scraped from /metrics.
type LoadGenResult struct {
	Duration    time.Duration
	Requests    uint64 // HTTP round trips
	Predictions uint64 // individual predictions (batch items)
	Errors      uint64
	// ServerFailures counts 5xx responses and transport errors — the
	// requests that count against availability. 4xx responses are the
	// client's fault and count as available.
	ServerFailures uint64
	// Availability is the fraction of round trips that did not fail
	// server-side (1.0 when no requests ran).
	Availability float64

	Throughput float64 // predictions per second
	P50, P99   time.Duration

	// Backoffs counts 503 responses whose Retry-After hint the client
	// honored by sleeping (capped, jittered) instead of retrying
	// immediately — the anti-stampede half of load shedding.
	Backoffs uint64

	// Scraped from /metrics after the run.
	CacheHitRate     float64
	ServerP50        time.Duration
	ServerP99        time.Duration
	MeanBatchItems   float64
	FallbackEvents   uint64
	QueueFullRejects uint64

	// Self-healing counters scraped from /metrics: hedged inferences,
	// open-breaker reroutes, safety-default answers, queue-deadline
	// drops, watchdog worker replacements and injected chaos faults.
	Hedges         uint64
	BreakerRouted  uint64
	SafeDefaults   uint64
	DeadlineDrops  uint64
	WorkerRestarts uint64
	ChaosInjected  uint64

	// Stages is the server-side latency attribution per predict-path
	// stage, in exposition order (queue, shed, batch, cache, inference,
	// total). Populated only when LoadGenOptions.Stages is set.
	Stages []StageStat
}

// StageStat summarizes one heteromap_stage_duration_seconds series.
type StageStat struct {
	Stage    string
	Count    uint64
	P50, P99 time.Duration
}

// String renders the serving-benchmark report.
func (r LoadGenResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "loadgen: %d requests (%d predictions, %d errors) in %v\n",
		r.Requests, r.Predictions, r.Errors, r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  throughput     : %.0f predictions/s\n", r.Throughput)
	fmt.Fprintf(&sb, "  client latency : p50 %v, p99 %v\n", r.P50, r.P99)
	fmt.Fprintf(&sb, "  server latency : p50 %v, p99 %v (from /metrics)\n", r.ServerP50, r.ServerP99)
	fmt.Fprintf(&sb, "  cache hit rate : %.1f%%\n", r.CacheHitRate*100)
	fmt.Fprintf(&sb, "  mean batch     : %.2f items\n", r.MeanBatchItems)
	fmt.Fprintf(&sb, "  availability   : %.2f%% (%d server failures)\n",
		r.Availability*100, r.ServerFailures)
	if len(r.Stages) > 0 {
		sb.WriteString("  server stages  :\n")
		for _, st := range r.Stages {
			fmt.Fprintf(&sb, "    %-10s p50 %v, p99 %v (n=%d)\n",
				st.Stage, st.P50, st.P99, st.Count)
		}
	}
	fmt.Fprintf(&sb, "  fallbacks      : %d, queue-full rejects: %d, honored backoffs: %d",
		r.FallbackEvents, r.QueueFullRejects, r.Backoffs)
	if r.Hedges+r.BreakerRouted+r.SafeDefaults+r.DeadlineDrops+r.WorkerRestarts+r.ChaosInjected > 0 {
		fmt.Fprintf(&sb, "\n  self-healing   : %d hedges, %d breaker reroutes, %d safe defaults, "+
			"%d deadline drops, %d worker restarts, %d injected faults",
			r.Hedges, r.BreakerRouted, r.SafeDefaults, r.DeadlineDrops, r.WorkerRestarts, r.ChaosInjected)
	}
	return sb.String()
}

// synthCombo is one replayable (benchmark, input) request of the mix.
type synthCombo struct{ req PredictRequest }

// buildMix synthesizes a pool of (benchmark, input) combinations with
// paper-plausible graph magnitudes. Workers replay it with a skewed
// (80/20-style) distribution so the cache sees realistic repetition.
func buildMix(o LoadGenOptions) []synthCombo {
	rng := rand.New(rand.NewSource(o.Seed))
	benches := algo.All()
	combos := make([]synthCombo, o.Combos)
	for i := range combos {
		b := benches[rng.Intn(len(benches))]
		v := int64(1e6 * (1 + rng.Float64()*100)) // 1M..100M vertices
		deg := int64(10 + rng.Intn(3000))
		combos[i] = synthCombo{req: PredictRequest{
			Model:     o.Model,
			Bench:     b.Name,
			Vertices:  v,
			Edges:     v * (2 + int64(rng.Intn(30))),
			MaxDegree: deg * (1 + int64(rng.Intn(100))),
			Diameter:  int64(10 + rng.Intn(2000)),
		}}
	}
	return combos
}

// buildDriftMix synthesizes the shifted pool: road-network-shaped
// graphs — few edges per vertex, modest maximum degree, very high
// diameter — whose best configurations sit far from what the calm
// pool's traffic rewards.
func buildDriftMix(o LoadGenOptions) []synthCombo {
	rng := rand.New(rand.NewSource(o.Seed + 104729))
	benches := algo.All()
	combos := make([]synthCombo, o.Combos)
	for i := range combos {
		b := benches[rng.Intn(len(benches))]
		v := int64(1e6 * (1 + rng.Float64()*29)) // 1M..30M vertices
		combos[i] = synthCombo{req: PredictRequest{
			Model:     o.Model,
			Bench:     b.Name,
			Vertices:  v,
			Edges:     v * (2 + int64(rng.Intn(3))),  // 2-4 edges/vertex
			MaxDegree: 3 + int64(rng.Intn(8)),        // 3-10
			Diameter:  int64(3000 + rng.Intn(27000)), // 3k-30k
		}}
	}
	return combos
}

// pick returns a mix index with a hot-set skew: 80% of picks land in the
// first 20% of the pool.
func pick(rng *rand.Rand, n int) int {
	hot := n / 5
	if hot < 1 {
		hot = 1
	}
	if rng.Float64() < 0.8 {
		return rng.Intn(hot)
	}
	return rng.Intn(n)
}

// RunLoadGen replays a synthetic request mix against a running server
// and reports throughput and latency, merging the server's /metrics view.
func RunLoadGen(o LoadGenOptions) (LoadGenResult, error) {
	o = o.withDefaults()
	if o.URL == "" {
		return LoadGenResult{}, fmt.Errorf("serve: loadgen needs a server URL")
	}
	mix := buildMix(o)
	var driftMix []synthCombo
	if o.Drift {
		driftMix = buildDriftMix(o)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	var requests, predictions, errors, serverFailures, backoffs atomic.Uint64
	latencies := make([][]time.Duration, o.Concurrency)
	deadline := time.Now().Add(o.Duration)
	driftAt := time.Now().Add(o.DriftAfter)

	stopChaos := make(chan struct{})
	if o.Chaos {
		go runChaosFlipper(client, o, stopChaos)
		defer close(stopChaos)
	}

	var wg sync.WaitGroup
	for g := 0; g < o.Concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(g)*7919))
			for time.Now().Before(deadline) {
				pool := mix
				if o.Drift && time.Now().After(driftAt) {
					pool = driftMix
				}
				var body any
				var url string
				n := 1
				if o.BatchSize > 1 {
					reqs := make([]PredictRequest, o.BatchSize)
					for i := range reqs {
						reqs[i] = pool[pick(rng, len(pool))].req
					}
					body = BatchRequest{Requests: reqs}
					url = o.URL + "/v1/predict/batch"
					n = o.BatchSize
				} else {
					body = pool[pick(rng, len(pool))].req
					url = o.URL + "/v1/predict"
				}
				buf, _ := json.Marshal(body)
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
				elapsed := time.Since(start)
				requests.Add(1)
				if err != nil || resp.StatusCode != http.StatusOK {
					errors.Add(1)
					if err != nil || resp.StatusCode >= 500 {
						serverFailures.Add(1)
					}
					var retryHint time.Duration
					if resp != nil {
						if resp.StatusCode == http.StatusServiceUnavailable {
							retryHint = retryAfterFrom(resp)
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					if retryHint > 0 {
						// A saturated node asked us to back off; honoring the
						// hint (capped, jittered) is what keeps a shed from
						// turning into a retry stampede.
						backoffs.Add(1)
						sleepJittered(rng, retryHint, deadline)
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				predictions.Add(uint64(n))
				latencies[g] = append(latencies[g], elapsed)
			}
		}(g)
	}
	wg.Wait()

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := LoadGenResult{
		Duration:       o.Duration,
		Requests:       requests.Load(),
		Predictions:    predictions.Load(),
		Errors:         errors.Load(),
		ServerFailures: serverFailures.Load(),
		Backoffs:       backoffs.Load(),
		Throughput:     float64(predictions.Load()) / o.Duration.Seconds(),
		Availability:   1,
	}
	if res.Requests > 0 {
		res.Availability = float64(res.Requests-res.ServerFailures) / float64(res.Requests)
	}
	if len(all) > 0 {
		res.P50 = all[len(all)/2]
		res.P99 = all[min(len(all)-1, len(all)*99/100)]
	}
	if err := res.scrapeMetrics(client, o.URL); err != nil {
		return res, fmt.Errorf("serve: loadgen metrics scrape: %w", err)
	}
	if !o.Stages {
		res.Stages = nil
	}
	return res, nil
}

// maxRetryBackoff caps how long a client honors a Retry-After hint: a
// misconfigured or hostile server must not be able to park the client.
const maxRetryBackoff = 250 * time.Millisecond

// retryAfterFrom reads the backoff hint from a 503, preferring the
// millisecond-precision header and falling back to standard Retry-After
// seconds. Zero when the response carries neither.
func retryAfterFrom(resp *http.Response) time.Duration {
	if ms := resp.Header.Get(RetryAfterMSHeader); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	if sec := resp.Header.Get("Retry-After"); sec != "" {
		if v, err := strconv.ParseInt(sec, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Second
		}
	}
	return 0
}

// sleepJittered sleeps for the hint capped at maxRetryBackoff, jittered
// uniformly over [d/2, d) so backed-off clients do not re-arrive in one
// synchronized wave, and never past the run deadline.
func sleepJittered(rng *rand.Rand, d time.Duration, deadline time.Time) {
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	if remain := time.Until(deadline); d > remain {
		d = remain
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// chaosProfiles are the fault shapes the flipper rotates through: each
// cycle exercises a different serve failure mode, ending on a calm
// window so the server must also be seen recovering.
func chaosProfiles(rate float64) []chaosRequest {
	return []chaosRequest{
		{SlowModelRate: rate, SlowModelMS: 50},                                                // slow model → hedging
		{StallWorkerRate: rate / 2, StallWorkerMS: 100},                                       // wedged worker → watchdog
		{QueueRejectRate: rate / 10, CorruptReloadRate: 1},                                    // saturation + bad reloads
		{SlowModelRate: rate, SlowModelMS: 50, StallWorkerRate: rate / 4, StallWorkerMS: 100}, // combined
		{}, // calm: recovery window
	}
}

// clusterChaosProfiles are the router-layer fault shapes the flipper
// rotates through in cluster mode: slow peers (hedging), partitions
// (per-try timeouts + failover), node deaths (fast failover), a combined
// storm, then calm. Field names match the router's /v1/chaos body.
func clusterChaosProfiles(rate float64) []map[string]float64 {
	return []map[string]float64{
		{"slow_peer_rate": rate, "slow_peer_ms": 50},
		{"partition_rate": rate / 4},
		// Kill rates stay below rate/3: a synthetic kill on BOTH rungs of
		// the failover ladder fails the request outright, and that
		// compound probability is what eats the availability budget.
		{"node_kill_rate": rate / 3},
		{"slow_peer_rate": rate, "slow_peer_ms": 50, "node_kill_rate": rate / 4},
		{}, // calm: recovery window
	}
}

// runChaosFlipper rotates the server's fault profile every ChaosFlip
// until stop closes, then resets it to calm so the server is left clean.
// In cluster mode the profiles are the router-layer fault shapes.
func runChaosFlipper(client *http.Client, o LoadGenOptions, stop <-chan struct{}) {
	post := func(p any) {
		buf, _ := json.Marshal(p)
		resp, err := client.Post(o.URL+"/v1/chaos", "application/json", bytes.NewReader(buf))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	var profiles []any
	if o.Cluster {
		for _, p := range clusterChaosProfiles(o.ChaosRate) {
			profiles = append(profiles, p)
		}
	} else {
		for _, p := range chaosProfiles(o.ChaosRate) {
			profiles = append(profiles, p)
		}
	}
	ticker := time.NewTicker(o.ChaosFlip)
	defer ticker.Stop()
	for i := 0; ; i++ {
		post(profiles[i%len(profiles)])
		select {
		case <-stop:
			if o.Cluster {
				post(map[string]float64{})
			} else {
				post(chaosRequest{})
			}
			return
		case <-ticker.C:
		}
	}
}

// scrapeMetrics pulls /metrics and fills the server-side fields.
func (r *LoadGenResult) scrapeMetrics(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	var hits, misses, batches, batchItems float64
	var buckets []promBucket
	stageBuckets := map[string][]promBucket{}
	stageCounts := map[string]uint64{}
	var stageOrder []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "heteromap_cache_hits_total "):
			hits = promValue(line)
		case strings.HasPrefix(line, "heteromap_cache_misses_total "):
			misses = promValue(line)
		case strings.HasPrefix(line, "heteromap_batches_total "):
			batches = promValue(line)
		case strings.HasPrefix(line, "heteromap_batch_items_total "):
			batchItems = promValue(line)
		case strings.HasPrefix(line, "heteromap_fallback_events_total "):
			r.FallbackEvents = uint64(promValue(line))
		case strings.HasPrefix(line, "heteromap_queue_full_total "):
			r.QueueFullRejects = uint64(promValue(line))
		case strings.HasPrefix(line, "heteromap_hedges_total "):
			r.Hedges = uint64(promValue(line))
		case strings.HasPrefix(line, "heteromap_breaker_routed_total "):
			r.BreakerRouted = uint64(promValue(line))
		case strings.HasPrefix(line, "heteromap_safe_default_total "):
			r.SafeDefaults = uint64(promValue(line))
		case strings.HasPrefix(line, "heteromap_deadline_drops_total "):
			r.DeadlineDrops = uint64(promValue(line))
		case strings.HasPrefix(line, "heteromap_worker_restarts_total "):
			r.WorkerRestarts = uint64(promValue(line))
		case strings.HasPrefix(line, "heteromap_chaos_slow_model_total "),
			strings.HasPrefix(line, "heteromap_chaos_worker_stalls_total "),
			strings.HasPrefix(line, "heteromap_chaos_queue_rejects_total "):
			r.ChaosInjected += uint64(promValue(line))
		case strings.HasPrefix(line, `heteromap_request_duration_seconds_bucket{le="`):
			rest := strings.TrimPrefix(line, `heteromap_request_duration_seconds_bucket{le="`)
			end := strings.Index(rest, `"`)
			if end < 0 {
				continue
			}
			ub, ok := parseLE(rest[:end])
			if !ok {
				continue
			}
			buckets = append(buckets, promBucket{le: ub, count: promValue(line)})
		case strings.HasPrefix(line, `heteromap_stage_duration_seconds_bucket{stage="`):
			rest := strings.TrimPrefix(line, `heteromap_stage_duration_seconds_bucket{stage="`)
			end := strings.Index(rest, `"`)
			if end < 0 {
				continue
			}
			stage := rest[:end]
			rest = rest[end:]
			leStart := strings.Index(rest, `le="`)
			if leStart < 0 {
				continue
			}
			rest = rest[leStart+len(`le="`):]
			if end = strings.Index(rest, `"`); end < 0 {
				continue
			}
			ub, ok := parseLE(rest[:end])
			if !ok {
				continue
			}
			if _, seen := stageBuckets[stage]; !seen {
				stageOrder = append(stageOrder, stage)
			}
			stageBuckets[stage] = append(stageBuckets[stage], promBucket{le: ub, count: promValue(line)})
		case strings.HasPrefix(line, `heteromap_stage_duration_seconds_count{stage="`):
			rest := strings.TrimPrefix(line, `heteromap_stage_duration_seconds_count{stage="`)
			end := strings.Index(rest, `"`)
			if end < 0 {
				continue
			}
			stageCounts[rest[:end]] = uint64(promValue(line))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if hits+misses > 0 {
		r.CacheHitRate = hits / (hits + misses)
	}
	if batches > 0 {
		r.MeanBatchItems = batchItems / batches
	}
	r.ServerP50 = quantileFromBuckets(buckets, 0.50)
	r.ServerP99 = quantileFromBuckets(buckets, 0.99)
	for _, stage := range stageOrder {
		b := stageBuckets[stage]
		r.Stages = append(r.Stages, StageStat{
			Stage: stage,
			Count: stageCounts[stage],
			P50:   quantileFromBuckets(b, 0.50),
			P99:   quantileFromBuckets(b, 0.99),
		})
	}
	return nil
}

// parseLE parses a bucket upper bound; +Inf maps to the -1 sentinel.
func parseLE(le string) (float64, bool) {
	if le == "+Inf" {
		return -1, true
	}
	ub, err := strconv.ParseFloat(le, 64)
	return ub, err == nil
}

// promValue parses the value of a "name 123" or "name{...} 123" line.
func promValue(line string) float64 {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0
	}
	v, _ := strconv.ParseFloat(line[i+1:], 64)
	return v
}

// promBucket is one cumulative histogram bucket scraped from /metrics;
// le = -1 marks the +Inf bucket.
type promBucket struct{ le, count float64 }

// quantileFromBuckets estimates a quantile from cumulative histogram
// buckets, interpolating inside the bucket.
func quantileFromBuckets(buckets []promBucket, q float64) time.Duration {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].count
	if total == 0 {
		return 0
	}
	rank := q * total
	lower, prevCount := 0.0, 0.0
	for _, b := range buckets {
		if b.count >= rank && b.count > prevCount {
			upper := b.le
			if upper < 0 { // +Inf bucket: report its lower bound
				return time.Duration(lower * float64(time.Second))
			}
			frac := (rank - prevCount) / (b.count - prevCount)
			sec := lower + (upper-lower)*frac
			return time.Duration(sec * float64(time.Second))
		}
		if b.le >= 0 {
			lower = b.le
		}
		prevCount = b.count
	}
	return time.Duration(lower * float64(time.Second))
}
