package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, log-spaced
// from 5µs to 1s — prediction inference sits in the tens of microseconds,
// queueing and batching push the tail into milliseconds.
var latencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// Histogram is a fixed-bucket latency histogram with atomic counters;
// the final implicit bucket is +Inf.
type Histogram struct {
	counts []atomic.Uint64 // len(latencyBuckets)+1
	total  atomic.Uint64
	sumNS  atomic.Uint64

	// exemplar remembers the most recent traced observation, linking the
	// histogram to a concrete trace in /debug/traces. Text exposition
	// 0.0.4 has no native exemplar syntax, so it is emitted as a
	// separate untyped <name>_exemplar series carrying a trace_id label.
	exemplar atomic.Pointer[histExemplar]
}

type histExemplar struct {
	traceID string
	seconds float64
}

// NewHistogram builds an empty histogram over latencyBuckets.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumNS.Add(uint64(d.Nanoseconds()))
}

// ObserveTraced records one duration and, when the observation came from
// a traced request, remembers its trace id as the histogram's exemplar.
func (h *Histogram) ObserveTraced(d time.Duration, traceID string) {
	h.Observe(d)
	if traceID != "" {
		h.exemplar.Store(&histExemplar{traceID: traceID, seconds: d.Seconds()})
	}
}

// Exemplar returns the last traced observation ("" and 0 when none).
func (h *Histogram) Exemplar() (traceID string, seconds float64) {
	if ex := h.exemplar.Load(); ex != nil {
		return ex.traceID, ex.seconds
	}
	return "", 0
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the total observed duration across all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket, the standard Prometheus histogram
// estimate. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		upper := latencyBuckets[len(latencyBuckets)-1]
		if i < len(latencyBuckets) {
			upper = latencyBuckets[i]
		}
		if float64(cum+n) >= rank && n > 0 {
			frac := (rank - float64(cum)) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum += n
		lower = upper
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// WriteProm emits the histogram in Prometheus text exposition format —
// exported so other serving layers (the cluster router) can reuse the
// bucket layout and exemplar convention in their own expositions.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	h.writeProm(w, name, labels)
}

// writeProm emits the histogram in Prometheus text exposition format.
func (h *Histogram) writeProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, ub, cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, h.total.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.total.Load())
	}
	if ex := h.exemplar.Load(); ex != nil {
		fmt.Fprintf(w, "%s_exemplar{%s%strace_id=%q} %g\n", name, labels, sep, ex.traceID, ex.seconds)
	}
}

// modelStats aggregates per-model serving counters.
type modelStats struct {
	requests atomic.Uint64
	latency  *Histogram
}

// Metrics is the serving subsystem's instrumentation: atomic counters and
// histograms covering requests, errors, queueing, batching, caching,
// fallback events and per-model latency. Everything is lock-free on the
// hot path; the per-model map uses sync.Map keyed by model name.
type Metrics struct {
	// Requests counts accepted prediction items (batch items count
	// individually); HTTPErrors counts 4xx/5xx responses.
	Requests    atomic.Uint64
	HTTPErrors  atomic.Uint64
	InFlight    atomic.Int64
	QueueFull   atomic.Uint64
	Batches     atomic.Uint64
	BatchItems  atomic.Uint64
	Fallbacks   atomic.Uint64
	ReloadCount atomic.Uint64

	// Self-healing counters. ReloadRejected counts reloads whose
	// candidate snapshot was quarantined (canary failure or corrupt/
	// empty database); Hedges counts inferences that launched a hedge
	// after the stage budget elapsed, HedgeWins the hedges that answered
	// first; BreakerRouted counts dispatches sent straight to the
	// last-known-good version because the active version's breaker was
	// open; SafeDefaults counts answers of last resort (no hedge target,
	// primary over budget twice); DeadlineDrops counts tasks abandoned
	// unprocessed because their deadline had already passed when the
	// worker reached them.
	ReloadRejected atomic.Uint64
	CanaryRuns     atomic.Uint64
	Hedges         atomic.Uint64
	HedgeWins      atomic.Uint64
	BreakerRouted  atomic.Uint64
	SafeDefaults   atomic.Uint64
	DeadlineDrops  atomic.Uint64

	// Chaos-harness counters. WorkerRestarts counts batch workers the
	// watchdog declared stalled and replaced; the Chaos* counters record
	// injected serve faults.
	WorkerRestarts   atomic.Uint64
	ChaosSlowModel   atomic.Uint64
	ChaosStalls      atomic.Uint64
	ChaosQueueReject atomic.Uint64

	// RequestLatency is end-to-end (enqueue to response ready).
	RequestLatency *Histogram

	// Per-stage latency attribution for the predict path, exposed as
	// heteromap_stage_duration_seconds{stage=...}. QueueWait covers
	// enqueue to batch pickup for tasks that were served; ShedWait the
	// same interval for tasks dropped because their deadline expired in
	// the queue — recorded separately so shed and served wait are
	// distinguishable. BatchAssembly is pickup to batch processing,
	// CacheLookup and Inference the per-group stage costs.
	QueueWait     *Histogram
	ShedWait      *Histogram
	BatchAssembly *Histogram
	CacheLookup   *Histogram
	Inference     *Histogram

	perModel sync.Map // string -> *modelStats
}

// NewMetrics builds an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		RequestLatency: NewHistogram(),
		QueueWait:      NewHistogram(),
		ShedWait:       NewHistogram(),
		BatchAssembly:  NewHistogram(),
		CacheLookup:    NewHistogram(),
		Inference:      NewHistogram(),
	}
}

// Stages enumerates the per-stage histograms in exposition order; the
// "total" stage aliases RequestLatency so dashboards can stack stages
// against the end-to-end figure from one metric family.
func (m *Metrics) Stages() []struct {
	Name string
	H    *Histogram
} {
	return []struct {
		Name string
		H    *Histogram
	}{
		{"queue", m.QueueWait},
		{"shed", m.ShedWait},
		{"batch", m.BatchAssembly},
		{"cache", m.CacheLookup},
		{"inference", m.Inference},
		{"total", m.RequestLatency},
	}
}

// Model returns (creating on first use) the stats bucket for a model.
func (m *Metrics) Model(name string) *modelStats {
	if s, ok := m.perModel.Load(name); ok {
		return s.(*modelStats)
	}
	s, _ := m.perModel.LoadOrStore(name, &modelStats{latency: NewHistogram()})
	return s.(*modelStats)
}

// ObserveModel records one prediction served by a model.
func (m *Metrics) ObserveModel(name string, d time.Duration) {
	s := m.Model(name)
	s.requests.Add(1)
	s.latency.Observe(d)
}

// breakerCode maps a breaker state name to its numeric gauge value.
func breakerCode(state string) int64 {
	switch state {
	case "open":
		return 1
	case "half-open":
		return 2
	}
	return 0
}

// WritePrometheus emits every series in Prometheus text format. The
// cache, queue-depth callback and model listing supply point-in-time
// gauges (models may be nil when no registry is attached).
func (m *Metrics) WritePrometheus(w io.Writer, cache *Cache, queueDepth func() int, models []ModelInfo) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("heteromap_requests_total", "prediction items accepted", m.Requests.Load())
	counter("heteromap_http_errors_total", "HTTP error responses", m.HTTPErrors.Load())
	counter("heteromap_queue_full_total", "requests rejected because the queue was full", m.QueueFull.Load())
	counter("heteromap_batches_total", "micro-batches drained by the worker pool", m.Batches.Load())
	counter("heteromap_batch_items_total", "prediction items processed in batches", m.BatchItems.Load())
	counter("heteromap_fallback_events_total", "predictor fallback-chain degradations", m.Fallbacks.Load())
	counter("heteromap_model_reloads_total", "model hot-swap reloads", m.ReloadCount.Load())
	counter("heteromap_reload_rejected_total", "reloads whose candidate snapshot was quarantined", m.ReloadRejected.Load())
	counter("heteromap_canary_runs_total", "canary validation runs against candidate snapshots", m.CanaryRuns.Load())
	counter("heteromap_hedges_total", "inferences hedged after the stage budget elapsed", m.Hedges.Load())
	counter("heteromap_hedge_wins_total", "hedged inferences answered by the hedge target", m.HedgeWins.Load())
	counter("heteromap_breaker_routed_total", "dispatches routed to last-known-good by an open breaker", m.BreakerRouted.Load())
	counter("heteromap_safe_default_total", "answers served from the fixed safety default", m.SafeDefaults.Load())
	counter("heteromap_deadline_drops_total", "tasks dropped because their deadline passed in the queue", m.DeadlineDrops.Load())
	counter("heteromap_worker_restarts_total", "stalled batch workers replaced by the watchdog", m.WorkerRestarts.Load())
	counter("heteromap_chaos_slow_model_total", "injected slow-model faults", m.ChaosSlowModel.Load())
	counter("heteromap_chaos_worker_stalls_total", "injected worker-stall faults", m.ChaosStalls.Load())
	counter("heteromap_chaos_queue_rejects_total", "injected queue-saturation rejections", m.ChaosQueueReject.Load())

	hits, misses, evictions := cache.Stats()
	counter("heteromap_cache_hits_total", "prediction cache hits", hits)
	counter("heteromap_cache_misses_total", "prediction cache misses", misses)
	counter("heteromap_cache_evictions_total", "prediction cache evictions", evictions)
	gauge("heteromap_cache_entries", "live prediction cache entries", int64(cache.Len()))

	gauge("heteromap_in_flight", "requests currently being served", m.InFlight.Load())
	gauge("heteromap_queue_depth", "prediction tasks waiting in the batch queue", int64(queueDepth()))

	if len(models) > 0 {
		fmt.Fprintf(w, "# HELP heteromap_model_breaker_state per-model-version circuit state (0 closed, 1 open, 2 half-open)\n")
		fmt.Fprintf(w, "# TYPE heteromap_model_breaker_state gauge\n")
		for _, info := range models {
			fmt.Fprintf(w, "heteromap_model_breaker_state{model=%q,version=\"%d\"} %d\n",
				info.Name, info.Version, breakerCode(info.Breaker))
		}
	}

	fmt.Fprintf(w, "# HELP heteromap_request_duration_seconds end-to-end prediction latency\n")
	fmt.Fprintf(w, "# TYPE heteromap_request_duration_seconds histogram\n")
	m.RequestLatency.writeProm(w, "heteromap_request_duration_seconds", "")

	fmt.Fprintf(w, "# HELP heteromap_stage_duration_seconds per-stage predict-path latency\n")
	fmt.Fprintf(w, "# TYPE heteromap_stage_duration_seconds histogram\n")
	for _, st := range m.Stages() {
		st.H.writeProm(w, "heteromap_stage_duration_seconds", fmt.Sprintf("stage=%q", st.Name))
	}

	// Per-model series, sorted for deterministic scrapes.
	var names []string
	m.perModel.Range(func(k, _ any) bool { names = append(names, k.(string)); return true })
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(w, "# HELP heteromap_model_requests_total predictions served per model\n")
		fmt.Fprintf(w, "# TYPE heteromap_model_requests_total counter\n")
		for _, n := range names {
			s := m.Model(n)
			fmt.Fprintf(w, "heteromap_model_requests_total{model=%q} %d\n", n, s.requests.Load())
		}
		fmt.Fprintf(w, "# HELP heteromap_model_duration_seconds per-model inference latency\n")
		fmt.Fprintf(w, "# TYPE heteromap_model_duration_seconds histogram\n")
		for _, n := range names {
			m.Model(n).latency.writeProm(w, "heteromap_model_duration_seconds", fmt.Sprintf("model=%q", n))
		}
	}
}
