package serve

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram()
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g", q)
	}
	// 90 fast observations, 10 slow: p50 must land in the fast bucket's
	// range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(20 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 <= 0 || p50 > 25e-6 {
		t.Fatalf("p50 = %g, want in (0, 25µs]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.05 || p99 > 0.1 {
		t.Fatalf("p99 = %g, want in [50ms, 100ms]", p99)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	m := NewMetrics()
	m.Requests.Add(3)
	m.ObserveModel("tree", 50*time.Microsecond)
	m.RequestLatency.Observe(time.Millisecond)
	c := NewCache(8, 2)
	c.Put(ck("k"), cachedPrediction{})
	c.Get(ck("k"))
	c.Get(ck("absent"))

	var sb strings.Builder
	m.WritePrometheus(&sb, c, func() int { return 5 }, []ModelInfo{
		{Name: "tree", Version: 2, Breaker: "open"},
	})
	out := sb.String()

	for _, want := range []string{
		"heteromap_requests_total 3",
		"heteromap_cache_hits_total 1",
		"heteromap_cache_misses_total 1",
		"heteromap_cache_entries 1",
		"heteromap_queue_depth 5",
		`heteromap_model_requests_total{model="tree"} 1`,
		`heteromap_model_duration_seconds_bucket{model="tree",le="+Inf"} 1`,
		"heteromap_request_duration_seconds_count 1",
		"# TYPE heteromap_request_duration_seconds histogram",
		`heteromap_model_breaker_state{model="tree",version="2"} 1`,
		"heteromap_hedges_total 0",
		"heteromap_worker_restarts_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in metrics output", want)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals the count.
	if !strings.Contains(out, `heteromap_request_duration_seconds_bucket{le="+Inf"} 1`) {
		t.Error("missing cumulative +Inf bucket")
	}
}

// The scrape parser in loadgen must invert WritePrometheus: quantiles
// recovered from the text form agree with the histogram's own estimate.
func TestScrapeRoundTrip(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 200; i++ {
		m.RequestLatency.Observe(30 * time.Microsecond)
	}
	for i := 0; i < 4; i++ {
		m.RequestLatency.Observe(40 * time.Millisecond)
	}
	var sb strings.Builder
	m.WritePrometheus(&sb, NewCache(1, 1), func() int { return 0 }, nil)

	var buckets []promBucket
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, `heteromap_request_duration_seconds_bucket{le="`) {
			continue
		}
		rest := strings.TrimPrefix(line, `heteromap_request_duration_seconds_bucket{le="`)
		end := strings.Index(rest, `"`)
		le := rest[:end]
		b := promBucket{count: promValue(line)}
		if le == "+Inf" {
			b.le = -1
		} else {
			var err error
			if b.le, err = strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("bad le %q: %v", le, err)
			}
		}
		buckets = append(buckets, b)
	}
	p50 := quantileFromBuckets(buckets, 0.50)
	want := time.Duration(m.RequestLatency.Quantile(0.50) * float64(time.Second))
	if d := p50 - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("scraped p50 %v != direct %v", p50, want)
	}
}
