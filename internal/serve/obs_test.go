package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/predict/dtree"
)

// ---- helpers ---------------------------------------------------------

// syncBuffer is a mutex-guarded log sink: slog writes from handler and
// worker goroutines race a plain bytes.Buffer under -race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines parses the buffer's JSON slog lines.
func (b *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad slog line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// newObsTracer builds a tracer that retains everything and logs JSON
// into the returned buffer.
func newObsTracer(rate float64) (*obs.Tracer, *syncBuffer) {
	buf := &syncBuffer{}
	tr := obs.NewTracer(obs.Options{
		SampleRate: rate,
		Logger:     slog.New(slog.NewJSONHandler(buf, nil)),
	})
	return tr, buf
}

// findTrace locates one retained trace by id.
func findTrace(tr *obs.Tracer, id string) (obs.TraceRecord, bool) {
	for _, rec := range tr.Ring().Snapshot(obs.TraceFilter{}) {
		if rec.ID == id {
			return rec, true
		}
	}
	return obs.TraceRecord{}, false
}

func spanNames(rec obs.TraceRecord) map[string]string {
	out := make(map[string]string, len(rec.Spans))
	for _, sp := range rec.Spans {
		out[sp.Name] = sp.Outcome
	}
	return out
}

func bfsRequest(model string) PredictRequest {
	return PredictRequest{
		Model: model, Bench: "BFS",
		Vertices: 3_000_000, Edges: 90_000_000, MaxDegree: 9000, Diameter: 60,
	}
}

// panickyPred simulates a crashed model file so the fallback chain
// degrades onto the built-in decision tree.
type panickyPred struct{}

func (panickyPred) Name() string                    { return "Crashy" }
func (panickyPred) Predict(feature.Vector) config.M { panic("model file corrupted") }

// ---- tentpole: end-to-end trace propagation --------------------------

// One /v1/predict request produces one retained trace whose id is
// echoed in both the X-Heteromap-Trace header and the response body,
// and whose span tree covers every pipeline stage.
func TestTraceEndToEndCoversPipeline(t *testing.T) {
	tracer, _ := newObsTracer(1)
	_, ts := newTestServer(t, Options{Tracer: tracer})

	resp, body := postJSON(t, ts.URL+"/v1/predict", bfsRequest("tree"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	header := resp.Header.Get("X-Heteromap-Trace")
	if header == "" {
		t.Fatal("X-Heteromap-Trace header missing")
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.TraceID != header {
		t.Fatalf("body trace_id %q != header %q", pr.TraceID, header)
	}

	rec, ok := findTrace(tracer, header)
	if !ok {
		t.Fatalf("trace %s not retained (SampleRate 1)", header)
	}
	names := spanNames(rec)
	for _, stage := range []string{
		"predict", "decode", "resolve", "registry", "queue", "batch",
		"cache", "inference", "infer:primary", "consult:Decision Tree",
	} {
		if _, ok := names[stage]; !ok {
			t.Fatalf("stage span %q missing; trace has %v", stage, names)
		}
	}
	for name, outcome := range names {
		if outcome != "ok" {
			t.Fatalf("span %q finished %q, want ok", name, outcome)
		}
	}
	if rec.Attrs["model"] != "tree" {
		t.Fatalf("trace model attr = %q", rec.Attrs["model"])
	}

	// The cached repeat still traces — but records a cache hit and no
	// inference span.
	resp2, body2 := postJSON(t, ts.URL+"/v1/predict", bfsRequest("tree"))
	var pr2 PredictResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if !pr2.Cached {
		t.Fatalf("repeat request not cached: %s", body2)
	}
	rec2, ok := findTrace(tracer, resp2.Header.Get("X-Heteromap-Trace"))
	if !ok {
		t.Fatal("cached request's trace not retained")
	}
	names2 := spanNames(rec2)
	if _, ok := names2["inference"]; ok {
		t.Fatal("cache hit still recorded an inference span")
	}
	if _, ok := names2["cache"]; !ok {
		t.Fatal("cache span missing on hit")
	}
}

// ---- tentpole: /v1/explain provenance --------------------------------

// The provenance record reachable at /v1/explain/{trace-id} reproduces
// the exact M1 + M2-M20 knobs the response carried, names the chain
// link that answered, and exposes the decision-tree path — which must
// match an independent ExplainPredict on the same features.
func TestExplainReproducesServedKnobs(t *testing.T) {
	tracer, _ := newObsTracer(1)
	_, ts := newTestServer(t, Options{Tracer: tracer})

	req := bfsRequest("tree")
	resp, body := postJSON(t, ts.URL+"/v1/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}

	eresp, err := http.Get(ts.URL + "/v1/explain/" + pr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d", eresp.StatusCode)
	}
	var explain struct {
		TraceID     string           `json:"trace_id"`
		Predictions []obs.Provenance `json:"predictions"`
	}
	if err := json.NewDecoder(eresp.Body).Decode(&explain); err != nil {
		t.Fatal(err)
	}
	if explain.TraceID != pr.TraceID || len(explain.Predictions) != 1 {
		t.Fatalf("explain = %+v", explain)
	}
	p := explain.Predictions[0]
	if !reflect.DeepEqual(p.M, pr.M) {
		t.Fatalf("provenance M differs from served M:\n got %v\nwant %v", p.M, pr.M)
	}
	if p.PredictorUsed != pr.PredictorUsed || p.PredictorUsed != "Decision Tree" {
		t.Fatalf("predictor_used = %q (response said %q)", p.PredictorUsed, pr.PredictorUsed)
	}
	if p.Model != pr.Model || p.Version != pr.Version {
		t.Fatalf("provenance identity %s@v%d, response %s@v%d", p.Model, p.Version, pr.Model, pr.Version)
	}
	if len(p.DTreePath) == 0 {
		t.Fatal("dtree_path empty for a tree-served prediction")
	}

	// Independent re-derivation: the same features through a fresh tree
	// must give the same knobs and the same decision path.
	pair := machine.PrimaryPair()
	feat, err := ResolveFeatures(&req, feature.DiscretizationStep)
	if err != nil {
		t.Fatal(err)
	}
	wantM, wantPath := dtree.New(pair.Limits()).ExplainPredict(feat)
	if !reflect.DeepEqual(wantM, pr.M) {
		t.Fatalf("re-derived M differs: %v vs %v", wantM, pr.M)
	}
	if !reflect.DeepEqual(wantPath, p.DTreePath) {
		t.Fatalf("re-derived path differs:\n got %v\nwant %v", p.DTreePath, wantPath)
	}
}

// ---- satellite: hedge race under tracing -----------------------------

// When the hedge wins the dispatch race, its span tree attaches to the
// request trace with outcome ok, the losing primary is marked
// cancelled, the trace is flagged hedge-win, and /v1/explain names the
// hedge's chain link as the answering learner.
func TestHedgeWinnerSpanAttachesToRequestTrace(t *testing.T) {
	tracer, _ := newObsTracer(-1) // only flagged traces survive
	pair := machine.PrimaryPair()
	limits := pair.Limits()
	s, ts := newTestServer(t, Options{
		Tracer: tracer, Workers: 1, MaxBatch: 1,
		MaxWait: time.Microsecond, StageBudget: 5 * time.Millisecond,
	})
	fast, err := s.Registry().Register("live", "v1-fast", fixedPred{m: config.DefaultGPU(limits)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Register("live", "v2-slow",
		&slowPred{m: config.DefaultMulticore(limits), delay: 80 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/predict", bfsRequest("live"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != fast.Version {
		t.Fatalf("answered by v%d, want hedge v%d", pr.Version, fast.Version)
	}
	joined := strings.Join(pr.Resilience, "; ")
	if !strings.Contains(joined, "hedge-win") {
		t.Fatalf("resilience events missing hedge-win: %q", joined)
	}

	rec, ok := findTrace(tracer, pr.TraceID)
	if !ok {
		t.Fatal("hedge-win trace not retained by tail sampling")
	}
	flags := strings.Join(rec.Flags, ",")
	if !strings.Contains(flags, "hedge-win") {
		t.Fatalf("trace flags = %v, want hedge-win", rec.Flags)
	}
	names := spanNames(rec)
	if names["infer:hedge"] != "ok" {
		t.Fatalf("infer:hedge outcome = %q, want ok", names["infer:hedge"])
	}
	if names["infer:primary"] != "cancelled" {
		t.Fatalf("infer:primary outcome = %q, want cancelled", names["infer:primary"])
	}

	// Provenance points at the version that actually answered.
	eresp, err := http.Get(ts.URL + "/v1/explain/" + pr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var explain struct {
		Predictions []obs.Provenance `json:"predictions"`
	}
	if err := json.NewDecoder(eresp.Body).Decode(&explain); err != nil {
		t.Fatal(err)
	}
	if len(explain.Predictions) != 1 || explain.Predictions[0].Version != fast.Version {
		t.Fatalf("provenance = %+v, want version %d", explain.Predictions, fast.Version)
	}
}

// ---- acceptance: flagged slog lines resolve to retained traces -------

// A deadline-expired request answers 504, logs "request failed" with a
// trace id, and tail-based sampling retains that trace even at sample
// rate zero.
func TestDeadline504LogsRetainedTrace(t *testing.T) {
	tracer, buf := newObsTracer(-1)
	_, ts := newTestServer(t, Options{Tracer: tracer, RequestTimeout: time.Nanosecond})

	resp, body := postJSON(t, ts.URL+"/v1/predict", bfsRequest("tree"))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	id := logTraceID(t, buf, "request failed")
	rec, ok := findTrace(tracer, id)
	if !ok {
		t.Fatalf("logged trace %s not retained", id)
	}
	flags := strings.Join(rec.Flags, ",")
	if !strings.Contains(flags, "5xx") || !strings.Contains(flags, "deadline") {
		t.Fatalf("flags = %v, want 5xx+deadline", rec.Flags)
	}
}

// A predictor crash degrades through the fallback chain; the response
// reports the degradation, the slog line carries the trace id, and the
// trace is retained with the fallback flag.
func TestFallbackLogsRetainedTrace(t *testing.T) {
	tracer, buf := newObsTracer(-1)
	s, ts := newTestServer(t, Options{Tracer: tracer})
	if _, err := s.Registry().Register("crashy", "v1", panickyPred{}); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/predict", bfsRequest("crashy"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Fallbacks) == 0 || pr.PredictorUsed != "Decision Tree" {
		t.Fatalf("expected fallback to the tree: used=%q fallbacks=%v", pr.PredictorUsed, pr.Fallbacks)
	}
	id := logTraceID(t, buf, "predictor fallback")
	if id != pr.TraceID {
		t.Fatalf("logged trace %q != response trace %q", id, pr.TraceID)
	}
	rec, ok := findTrace(tracer, id)
	if !ok {
		t.Fatalf("fallback trace %s not retained", id)
	}
	if !strings.Contains(strings.Join(rec.Flags, ","), "fallback") {
		t.Fatalf("flags = %v, want fallback", rec.Flags)
	}
}

// A rejected reload (chaos-corrupted snapshot standing in for a canary
// rejection) logs "reload rejected" with a trace id retained under the
// canary-reject flag.
func TestReloadRejectionLogsRetainedTrace(t *testing.T) {
	tracer, buf := newObsTracer(-1)
	_, ts := newTestServer(t, Options{Tracer: tracer, Chaos: fault.NewServeInjector(1)})

	resp, _ := postJSON(t, ts.URL+"/v1/chaos", map[string]any{"corrupt_reload_rate": 1.0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos arm status %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/reload", map[string]string{"model": "tree", "path": "does-not-matter.db"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	id := logTraceID(t, buf, "reload rejected")
	rec, ok := findTrace(tracer, id)
	if !ok {
		t.Fatalf("rejected-reload trace %s not retained", id)
	}
	if !strings.Contains(strings.Join(rec.Flags, ","), "canary-reject") {
		t.Fatalf("flags = %v, want canary-reject", rec.Flags)
	}
}

// logTraceID finds the first slog line with the given msg and returns
// its non-empty trace_id.
func logTraceID(t *testing.T, buf *syncBuffer, msg string) string {
	t.Helper()
	for _, line := range buf.logLines(t) {
		if line["msg"] != msg {
			continue
		}
		id, _ := line["trace_id"].(string)
		if id == "" {
			t.Fatalf("log line %v has no trace_id", line)
		}
		return id
	}
	t.Fatalf("no %q slog line emitted; log:\n%s", msg, buf.String())
	return ""
}

// ---- satellite: queue-wait accounting --------------------------------

// Served requests attribute their latency across stages: queue wait +
// batch assembly + cache + inference accounts for (nearly all of) the
// observed end-to-end total.
func TestStageAccountingSumsToTotal(t *testing.T) {
	pair := machine.PrimaryPair()
	reg := NewRegistry(pair)
	slow := &slowPred{m: config.DefaultGPU(pair.Limits()), delay: 20 * time.Millisecond}
	model, err := reg.Register("slow", "test", slow)
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	b := NewBatcher(NewCache(64, 2), metrics, BatcherConfig{
		Workers: 1, MaxBatch: 1, MaxWait: time.Microsecond, StageBudget: time.Second,
	})
	t.Cleanup(b.Stop)

	const n = 3
	for i := 0; i < n; i++ {
		if _, err := submit(context.Background(), b, model, testFeature(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range []struct {
		name  string
		h     *Histogram
		count uint64
	}{
		{"queue", metrics.QueueWait, n},
		{"batch", metrics.BatchAssembly, n},
		{"cache", metrics.CacheLookup, n},
		{"inference", metrics.Inference, n},
		{"total", metrics.RequestLatency, n},
		{"shed", metrics.ShedWait, 0},
	} {
		if got := st.h.Count(); got != st.count {
			t.Fatalf("%s count = %d, want %d", st.name, got, st.count)
		}
	}
	total := metrics.RequestLatency.Sum()
	stages := metrics.QueueWait.Sum() + metrics.BatchAssembly.Sum() +
		metrics.CacheLookup.Sum() + metrics.Inference.Sum()
	if stages > total {
		t.Fatalf("stage sums %v exceed observed total %v", stages, total)
	}
	// The unattributed residue is fan-out bookkeeping — microseconds per
	// request against ~20ms of inference each.
	if gap := total - stages; gap > total/4+10*time.Millisecond {
		t.Fatalf("stages account for too little: total %v, stages %v (gap %v)", total, stages, gap)
	}
	if metrics.Inference.Sum() < n*15*time.Millisecond {
		t.Fatalf("inference sum %v implausibly small for %d 20ms predictions", metrics.Inference.Sum(), n)
	}
}

// Shed and served queue waits land in separate histograms: a task whose
// deadline expired in the queue is recorded as ShedWait (and counted as
// a deadline drop), never as served QueueWait.
func TestShedVsServedQueueWaitSeparated(t *testing.T) {
	pair := machine.PrimaryPair()
	reg := NewRegistry(pair)
	slow := &slowPred{m: config.DefaultGPU(pair.Limits()), delay: 40 * time.Millisecond}
	model, err := reg.Register("slow", "test", slow)
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	b := NewBatcher(NewCache(64, 2), metrics, BatcherConfig{
		Workers: 1, MaxBatch: 1, MaxWait: time.Microsecond, StageBudget: time.Second,
	})
	t.Cleanup(b.Stop)

	// Occupy the single worker with a 40ms inference.
	firstDone := make(chan error, 1)
	go func() {
		_, err := submit(context.Background(), b, model, testFeature(0))
		firstDone <- err
	}()
	workerBusy := func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		for _, ws := range b.workers {
			if ws.busy.Load() {
				return true
			}
		}
		return false
	}
	for deadline := time.Now().Add(time.Second); !workerBusy(); {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the occupying task")
		}
		time.Sleep(time.Millisecond)
	}

	// Three tasks whose callers give up after 5ms: they expire while the
	// worker is busy and must be dropped, not served.
	const drops = 3
	var wg sync.WaitGroup
	for i := 0; i < drops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
			defer cancel()
			if _, err := submit(ctx, b, model, testFeature(10+i)); err == nil {
				t.Error("expired task was served")
			}
		}(i)
	}
	wg.Wait() // callers observed their deadlines; tasks still queued

	// A final served request behind them in FIFO order proves the queue
	// drained past the drops.
	if _, err := submit(context.Background(), b, model, testFeature(99)); err != nil {
		t.Fatal(err)
	}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	if got := metrics.DeadlineDrops.Load(); got != drops {
		t.Fatalf("DeadlineDrops = %d, want %d", got, drops)
	}
	if got := metrics.ShedWait.Count(); got != drops {
		t.Fatalf("ShedWait count = %d, want %d (one per drop)", got, drops)
	}
	if got := metrics.QueueWait.Count(); got != 2 {
		t.Fatalf("QueueWait count = %d, want 2 (served only)", got)
	}
	// Each dropped task waited at least its own 5ms deadline.
	if min := time.Duration(drops) * 5 * time.Millisecond; metrics.ShedWait.Sum() < min {
		t.Fatalf("ShedWait sum %v < %v", metrics.ShedWait.Sum(), min)
	}
}

// ---- tracing disabled stays inert ------------------------------------

// With DisableTracing the predict path serves identically: no header,
// no trace id, no ring — nil-safe instrumentation end to end.
func TestDisableTracingServesWithoutTraces(t *testing.T) {
	s, ts := newTestServer(t, Options{DisableTracing: true})
	if s.Tracer() != nil {
		t.Fatal("tracer built despite DisableTracing")
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", bfsRequest("tree"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Heteromap-Trace"); h != "" {
		t.Fatalf("trace header %q emitted with tracing disabled", h)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.TraceID != "" {
		t.Fatalf("trace_id %q in response with tracing disabled", pr.TraceID)
	}
	eresp, err := http.Get(ts.URL + "/v1/explain/anything")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, eresp.Body)
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusNotFound {
		t.Fatalf("explain with tracing disabled: status %d, want 404", eresp.StatusCode)
	}
}
