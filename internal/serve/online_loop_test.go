package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/online"
	"heteromap/internal/train"
)

// shiftedCells deterministically finds discretized cells where the weak
// live model (always the default GPU configuration) realizes a large
// cost gap — a stand-in for the workload shifting to graphs the trained
// model never saw (the paper's social-network vs road-network split).
func shiftedCells(t *testing.T, want int) []feature.Vector {
	t.Helper()
	pair := machine.PrimaryPair()
	cands := config.Enumerate(pair.Limits())
	gpu := config.DefaultGPU(pair.Limits())
	rng := rand.New(rand.NewSource(99))
	seen := make(map[string]bool)
	var cells []feature.Vector
	for len(cells) < want {
		f := feature.Combine(train.RandomB(rng), train.RandomI(rng))
		if seen[f.Key()] {
			continue
		}
		seen[f.Key()] = true
		job := cellJob(f)
		best := math.Inf(1)
		for _, c := range cands {
			if v := train.Metric(pair, train.Performance, job, c); v < best {
				best = v
			}
		}
		if best > 0 && train.Metric(pair, train.Performance, job, gpu)/best-1 > 0.5 {
			cells = append(cells, f)
		}
	}
	return cells
}

// cellJob recreates the collector's deterministic per-cell job.
func cellJob(f feature.Vector) machine.Job {
	rng := rand.New(rand.NewSource(int64(f.ShardHash())))
	combo := train.Synthesize(f.B(), f.I(), rng)
	return machine.Job{Work: combo.Work, FootprintBytes: combo.Footprint}
}

// cellGap realizes one configuration on a cell and returns its gap over
// the full-grid best.
func cellGap(t *testing.T, f feature.Vector, m config.M) float64 {
	t.Helper()
	pair := machine.PrimaryPair()
	job := cellJob(f)
	best := math.Inf(1)
	for _, c := range config.Enumerate(pair.Limits()) {
		if v := train.Metric(pair, train.Performance, job, c); v < best {
			best = v
		}
	}
	if best <= 0 {
		t.Fatal("cell with non-positive best cost")
	}
	gap := train.Metric(pair, train.Performance, job, m)/best - 1
	if gap < 0 {
		gap = 0
	}
	return gap
}

// newOnlineLoopServer wires a server whose default "tree" model is
// deliberately weak (always default GPU) around an online manager, with
// the cmd-path tolerant canary (validity and latency gates).
func newOnlineLoopServer(t *testing.T, floor float64, mutate func(string) error) (*Server, *online.Manager) {
	t.Helper()
	pair := machine.PrimaryPair()
	reg := NewRegistry(pair)
	weak, err := reg.Register("tree", "v1-weak", fixedPred{m: config.DefaultGPU(pair.Limits())})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := RecordGoldenSet(weak, DefaultGoldenRequests(8, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	mgr := online.New(online.Options{
		Pair:             pair,
		Model:            "tree",
		DriftAlpha:       0.5,
		DriftThreshold:   0.25,
		DriftWindow:      4,
		RetrainMin:       16,
		ShadowDir:        t.TempDir(),
		UncertaintyFloor: floor,
		MutateShadow:     mutate,
	})
	srv := New(Options{
		Registry: reg,
		Pair:     pair,
		Canary:   &CanaryConfig{Cases: cases, MaxLatency: time.Second, MaxMismatches: len(cases)},
		Online:   mgr,
		Workers:  2,
	})
	t.Cleanup(func() { srv.batcher.Stop() })
	return srv, mgr
}

// postPredict sends one raw-feature prediction and decodes the answer.
func postPredict(t *testing.T, url string, f feature.Vector) (PredictResponse, string) {
	t.Helper()
	body, _ := json.Marshal(PredictRequest{Features: f[:]})
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr, resp.Header.Get("X-Heteromap-Trace")
}

// TestClosedLoopDriftRetrainPromote is the deterministic end-to-end
// acceptance path: a seeded workload shift is served badly by the weak
// live model -> the collector realizes the gaps and arms the drift
// signal -> a shadow model retrains from the feedback window, beats the
// live model on holdout replay, and promotes through the canary-gated
// reload path (registry version advances) -> the same shifted cells are
// then served with a strictly smaller per-cell cost gap.
func TestClosedLoopDriftRetrainPromote(t *testing.T) {
	srv, mgr := newOnlineLoopServer(t, 0, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cells := shiftedCells(t, 24)
	preGap := make(map[string]float64, len(cells))
	for _, f := range cells {
		pr, _ := postPredict(t, ts.URL, f)
		if pr.PredictorUsed != "FixedTest" {
			t.Fatalf("pre-promotion predictor = %s, want the weak FixedTest", pr.PredictorUsed)
		}
		preGap[f.Key()] = cellGap(t, f, pr.M)
	}

	versionBefore := srv.Registry().DefaultVersion()
	if n := mgr.Tick(); n != len(cells) {
		t.Fatalf("tick processed %d, want %d", n, len(cells))
	}
	if mgr.Drift().Signals("tree") == 0 {
		t.Fatal("shifted workload did not raise the drift signal")
	}
	rep := mgr.LastReport()
	if rep == nil || !rep.Promoted {
		t.Fatalf("drift did not end in a promotion: %+v", rep)
	}
	if rep.CandidateGap >= rep.LiveGap {
		t.Fatalf("shadow candidate gap %v did not beat live %v", rep.CandidateGap, rep.LiveGap)
	}
	versionAfter := srv.Registry().DefaultVersion()
	if versionAfter <= versionBefore {
		t.Fatalf("registry version %d -> %d: promotion did not go through the registry",
			versionBefore, versionAfter)
	}

	// The same shifted distribution, served by the promoted model, must
	// close the gap on every cell — strictly, since the pre-promotion
	// gaps were all large and the shadow trained on exactly these cells.
	for _, f := range cells {
		pr, _ := postPredict(t, ts.URL, f)
		if pr.Cached {
			t.Fatalf("cell %s served from a stale cache across the promotion", f.Key())
		}
		post := cellGap(t, f, pr.M)
		if pre := preGap[f.Key()]; post >= pre {
			t.Fatalf("cell %s: post-promotion gap %v not strictly below pre-promotion %v",
				f.Key(), post, pre)
		}
	}
}

// TestCorruptShadowQuarantinedNeverServes: the corruption seam damages
// the shadow database between write and promotion. The canary-gated
// reload must quarantine it, the registry version must not advance, and
// the weak model must keep serving unchanged.
func TestCorruptShadowQuarantinedNeverServes(t *testing.T) {
	truncate := func(path string) error {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(path, b[:len(b)/2], 0o644)
	}
	srv, mgr := newOnlineLoopServer(t, 0, truncate)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cells := shiftedCells(t, 24)
	for _, f := range cells {
		postPredict(t, ts.URL, f)
	}
	versionBefore := srv.Registry().DefaultVersion()
	mgr.Tick()
	rep := mgr.LastReport()
	if rep == nil || rep.Promoted {
		t.Fatalf("corrupted shadow was promoted: %+v", rep)
	}
	if got := srv.Registry().DefaultVersion(); got != versionBefore {
		t.Fatalf("registry version moved %d -> %d on a corrupt shadow", versionBefore, got)
	}
	if q := srv.Registry().Quarantined(); len(q) == 0 {
		t.Fatal("corrupt shadow not quarantined")
	}
	if s := mgr.Snapshot(); s.Rejections != 1 || s.Promotions != 0 {
		t.Fatalf("rejections=%d promotions=%d, want 1/0", s.Rejections, s.Promotions)
	}
	// The weak model still answers, unchanged.
	pr, _ := postPredict(t, ts.URL, cells[0])
	if pr.PredictorUsed == "DB Lookup" {
		t.Fatal("quarantined shadow is serving")
	}
	if pr.Version != versionBefore {
		t.Fatalf("serving version %d, want unchanged %d", pr.Version, versionBefore)
	}
}

// TestUncertaintyRoutingProbesAndExplains: with a floor above the
// neutral confidence, every fresh prediction from the opaque weak
// predictor routes to the exhaustive probe; the probed answer is
// cached, written back into the feedback stream, and visible in
// /v1/explain provenance.
func TestUncertaintyRoutingProbesAndExplains(t *testing.T) {
	srv, mgr := newOnlineLoopServer(t, 0.9, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cells := shiftedCells(t, 3)
	f := cells[0]
	pr, traceID := postPredict(t, ts.URL, f)
	if pr.PredictorUsed != online.ProbePredictor {
		t.Fatalf("predictor = %s, want %s (neutral confidence 0.5 < floor 0.9)",
			pr.PredictorUsed, online.ProbePredictor)
	}
	if gpu := config.DefaultGPU(machine.PrimaryPair().Limits()); pr.M == gpu {
		t.Fatal("probe returned the weak model's answer on a cell where GPU is far from optimal")
	}
	if len(pr.Resilience) == 0 {
		t.Fatal("probe left no resilience event on the response")
	}

	// The probed answer is cached: a repeat is a cache hit with the same
	// configuration and the probe label.
	again, _ := postPredict(t, ts.URL, f)
	if !again.Cached || again.PredictorUsed != online.ProbePredictor || again.M != pr.M {
		t.Fatalf("repeat not served from the probed cache entry: %+v", again)
	}

	// The write-back reaches the feedback window with the probe label.
	// Match on the server's discretized key (float rounding can make it
	// differ textually from f.Key()).
	mgr.Tick()
	found := false
	for _, o := range mgr.FeedbackWindow().Snapshot() {
		if o.Key == pr.Key && o.Predictor == online.ProbePredictor && o.Probed {
			found = true
			if o.Gap > 0.5 {
				t.Fatalf("probed answer still has gap %v on its own cell", o.Gap)
			}
		}
	}
	if !found {
		t.Fatal("probe result never reached the feedback stream")
	}

	// Provenance names the probe as the deciding predictor.
	if traceID == "" {
		t.Fatal("no trace id on the probed response")
	}
	resp, err := http.Get(ts.URL + "/v1/explain/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d: %s", resp.StatusCode, buf.String())
	}
	if want := fmt.Sprintf("%q", online.ProbePredictor); !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Fatalf("explain output does not name the probe: %s", buf.String())
	}
}

// TestOnlineEndpointAndMetrics: /v1/online reports the loop state, the
// online exposition rides /metrics, and both 409 cleanly when online
// learning is off.
func TestOnlineEndpointAndMetrics(t *testing.T) {
	srv, mgr := newOnlineLoopServer(t, 0, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cells := shiftedCells(t, 4)
	for _, f := range cells {
		postPredict(t, ts.URL, f)
	}
	mgr.Tick()

	resp, err := http.Get(ts.URL + "/v1/online")
	if err != nil {
		t.Fatal(err)
	}
	var snap online.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Ingested != 4 || snap.Processed != 4 || snap.WindowSize != 4 {
		t.Fatalf("snapshot = %+v, want 4 ingested/processed/window", snap)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"heteromap_online_ingested_total 4",
		"heteromap_drift_ewma{model=\"tree\"}",
		"heteromap_shadow_retrains_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Without a manager the endpoint 409s like /v1/chaos does.
	plain := New(Options{Workers: 1})
	t.Cleanup(func() { plain.batcher.Stop() })
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	oresp, err := http.Get(pts.URL + "/v1/online")
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusConflict {
		t.Fatalf("/v1/online without online learning = %d, want 409", oresp.StatusCode)
	}
}
