package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/train"
)

// Model is one immutable registry entry: a predictor fronted by the
// fault package's fallback chain, guarded by a per-version circuit
// breaker. In-flight requests hold the *Model they resolved; a hot-swap
// installs a fresh entry without touching the old one, so swapping never
// corrupts requests already being served.
type Model struct {
	// Name is the registry key.
	Name string
	// Version increments monotonically across the whole registry on
	// every (re)registration, so cache keys from a replaced model can
	// never alias the new one's.
	Version uint64
	// Source describes where the model came from, for /v1/models.
	Source string

	chain   *fault.Chain
	breaker *fault.Breaker
}

// Select consults the model's fallback chain.
func (m *Model) Select(f feature.Vector) fault.Selection {
	return m.chain.Select(f)
}

// SelectCtx is Select with request tracing attached: each chain link
// consulted appears as a span on the ctx's trace.
func (m *Model) SelectCtx(ctx context.Context, f feature.Vector) fault.Selection {
	return m.chain.SelectCtx(ctx, f)
}

// BatchCapable reports whether the chain's primary predictor answers
// whole micro-batches in one pass (implements predict.BatchPredictor).
func (m *Model) BatchCapable() bool { return m.chain.BatchCapable() }

// SelectBatchCtx consults the chain once for a whole micro-batch; see
// fault.Chain.SelectBatchCtx for the equivalence contract.
func (m *Model) SelectBatchCtx(ctx context.Context, feats []feature.Vector, dst []fault.Selection) {
	m.chain.SelectBatchCtx(ctx, feats, dst)
}

// PredictorName names the chain's primary predictor.
func (m *Model) PredictorName() string { return m.chain.Name() }

// Link returns the chain predictor with the given name, or nil — the
// provenance layer uses it to re-derive learner-specific detail (tree
// decision path, NN margin) for the link that answered a request.
func (m *Model) Link(name string) predict.Predictor {
	for _, p := range m.chain.Predictors {
		if p != nil && p.Name() == name {
			return p
		}
	}
	return nil
}

// Breaker returns the model version's circuit breaker.
func (m *Model) Breaker() *fault.Breaker { return m.breaker }

// SafeDefault is the chain's terminal fixed choice — the answer of last
// resort when the model cannot be consulted within a bounded time.
func (m *Model) SafeDefault() fault.Selection {
	return fault.Selection{
		M:         m.chain.Default.Clamp(m.chain.Limits),
		Used:      m.chain.DefaultLabel,
		Fallbacks: []string{fmt.Sprintf("%s: abandoned (over budget)", m.PredictorName())},
	}
}

// ModelInfo is the /v1/models wire representation of an entry.
type ModelInfo struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Predictor string `json:"predictor"`
	Source    string `json:"source"`
	Default   bool   `json:"default"`
	// Breaker is the version's circuit state: closed, open or half-open.
	Breaker string `json:"breaker"`
	// LastGoodVersion is the previous healthy version hedged/routed to
	// when this version's breaker trips (0: none).
	LastGoodVersion uint64 `json:"last_good_version,omitempty"`
}

// QuarantineInfo records one rejected reload: the candidate version that
// failed admission (canary mismatch, latency SLO breach, corrupt or
// empty snapshot) and why. Quarantined versions never served traffic.
type QuarantineInfo struct {
	Name    string    `json:"name"`
	Version uint64    `json:"version,omitempty"`
	Source  string    `json:"source"`
	Reason  string    `json:"reason"`
	When    time.Time `json:"when"`
}

// maxQuarantine bounds the quarantine history kept for /v1/models.
const maxQuarantine = 32

// ErrCanaryRejected marks reload failures where the candidate loaded
// cleanly but failed canary validation; the HTTP layer maps it to 422.
var ErrCanaryRejected = errors.New("serve: canary rejected candidate snapshot")

// Registry holds the named, versioned predictors a server dispatches to.
// Reads take a shared lock and return immutable *Model snapshots;
// registration replaces the map entry atomically under the write lock —
// the hot-swap path. For every name the previously active snapshot is
// retained as last-known-good, the hedge/failover target when the
// current version's breaker trips.
type Registry struct {
	pair machine.Pair

	mu          sync.RWMutex
	models      map[string]*Model
	lastGood    map[string]*Model
	quarantine  []QuarantineInfo
	defaultName string

	breakerThreshold int
	breakerCooldown  int

	version atomic.Uint64
}

// NewRegistry builds an empty registry for an accelerator pair.
func NewRegistry(pair machine.Pair) *Registry {
	return &Registry{
		pair:             pair,
		models:           make(map[string]*Model),
		lastGood:         make(map[string]*Model),
		breakerThreshold: 5,
		breakerCooldown:  64,
	}
}

// SetBreakerPolicy configures the per-version circuit breakers cut into
// future registrations: threshold consecutive SLO violations open the
// circuit, cooldown refused dispatches admit a half-open probe.
// threshold <= 0 disables tripping. Existing models keep their breakers.
func (r *Registry) SetBreakerPolicy(threshold, cooldown int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.breakerThreshold = threshold
	r.breakerCooldown = cooldown
}

// Pair returns the registry's accelerator pair.
func (r *Registry) Pair() machine.Pair { return r.pair }

// newModel assembles a candidate entry without installing it: the staged
// half of a canary-validated reload. The predictor is wrapped in a
// fallback chain ending, as everywhere else, in the analytical decision
// tree and a fixed deployable default — a served prediction is never
// trusted unconditionally.
func (r *Registry) newModel(name, source string, p predict.Predictor, fallbacks ...predict.Predictor) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must not be empty")
	}
	if p == nil {
		return nil, fmt.Errorf("serve: model %q: nil predictor", name)
	}
	limits := r.pair.Limits()
	preds := append([]predict.Predictor{p}, fallbacks...)
	if _, isTree := p.(*dtree.Tree); !isTree {
		preds = append(preds, dtree.New(limits))
	}
	r.mu.RLock()
	threshold, cooldown := r.breakerThreshold, r.breakerCooldown
	r.mu.RUnlock()
	return &Model{
		Name:    name,
		Version: r.version.Add(1),
		Source:  source,
		chain:   fault.NewChain(limits, preds...),
		breaker: fault.NewBreaker(threshold, cooldown),
	}, nil
}

// install makes a staged model the active entry for its name, demoting
// the previous snapshot to last-known-good.
func (r *Registry) install(m *Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.models[m.Name]; ok {
		r.lastGood[m.Name] = old
	}
	r.models[m.Name] = m
	if r.defaultName == "" {
		r.defaultName = m.Name
	}
}

// Register installs (or hot-swaps) a model under name. The first
// registration becomes the default model.
func (r *Registry) Register(name, source string, p predict.Predictor, fallbacks ...predict.Predictor) (*Model, error) {
	m, err := r.newModel(name, source, p, fallbacks...)
	if err != nil {
		return nil, err
	}
	r.install(m)
	return m, nil
}

// Get resolves a model by name; the empty name selects the default.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultName
	}
	if m, ok := r.models[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("serve: unknown model %q", name)
}

// LastGood resolves a name's previous healthy snapshot — the hedge and
// breaker-failover target. Nil when the name has never been swapped.
func (r *Registry) LastGood(name string) *Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultName
	}
	return r.lastGood[name]
}

// DefaultVersion returns the version of the default model (0 when the
// registry is empty) — the generation number cluster routers compare
// across peers so a rolling reload never hedges one request against two
// different model versions.
func (r *Registry) DefaultVersion() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m, ok := r.models[r.defaultName]; ok {
		return m.Version
	}
	return 0
}

// SetDefault changes which model the empty name resolves to.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	r.defaultName = name
	return nil
}

// Rollback reinstates a name's last-known-good snapshot as the active
// entry (the manual half of self-healing; canary rejections never need
// it because a rejected candidate is never installed).
func (r *Registry) Rollback(name string) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" {
		name = r.defaultName
	}
	prev, ok := r.lastGood[name]
	if !ok {
		return nil, fmt.Errorf("serve: model %q has no last-known-good version", name)
	}
	r.lastGood[name] = r.models[name]
	r.models[name] = prev
	return prev, nil
}

// Quarantine records a rejected candidate without installing anything,
// keeping the newest maxQuarantine entries.
func (r *Registry) Quarantine(info QuarantineInfo) {
	if info.When.IsZero() {
		info.When = time.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.quarantine = append(r.quarantine, info)
	if len(r.quarantine) > maxQuarantine {
		r.quarantine = r.quarantine[len(r.quarantine)-maxQuarantine:]
	}
}

// Quarantined returns the rejected-reload history, newest last.
func (r *Registry) Quarantined() []QuarantineInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]QuarantineInfo, len(r.quarantine))
	copy(out, r.quarantine)
	return out
}

// List describes every registered model, sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, m := range r.models {
		info := ModelInfo{
			Name:      m.Name,
			Version:   m.Version,
			Predictor: m.PredictorName(),
			Source:    m.Source,
			Default:   m.Name == r.defaultName,
			Breaker:   m.breaker.State().String(),
		}
		if lg := r.lastGood[m.Name]; lg != nil {
			info.LastGoodVersion = lg.Version
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// VersionCounter returns the registry-wide monotonic version counter's
// current value — the floor a durable cache snapshot records so a
// restarted registry never reissues a pre-crash version number.
func (r *Registry) VersionCounter() uint64 { return r.version.Load() }

// EnsureVersionFloor raises the version counter to at least v. Restart
// recovery calls it with the persisted pre-crash counter, so versions
// stay monotone across the crash: a router that saw version 40 die can
// never meet a reborn version 2.
func (r *Registry) EnsureVersionFloor(v uint64) {
	for {
		cur := r.version.Load()
		if cur >= v || r.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Restamp reissues a name's active entry under a fresh version number
// without touching its predictor chain, breaker, or last-known-good
// entry. Recovery restamps models registered before the version floor
// was restored, lifting them above every pre-crash version.
func (r *Registry) Restamp(name string) (*Model, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	nm := &Model{
		Name:    m.Name,
		Version: r.version.Add(1),
		Source:  m.Source,
		chain:   m.chain,
		breaker: m.breaker,
	}
	r.models[name] = nm
	return nm, nil
}

// loadDBPredictor loads and sanity-checks a profiler database file.
func (r *Registry) loadDBPredictor(name, path string) (predict.Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reload %q: %w", name, err)
	}
	defer f.Close()
	db, err := train.LoadDB(f)
	if err != nil {
		return nil, fmt.Errorf("serve: reload %q: %w", name, err)
	}
	if len(db.Samples) == 0 {
		return nil, fmt.Errorf("serve: reload %q: database %s holds no samples", name, path)
	}
	if db.Pair.Name() != r.pair.Name() {
		return nil, fmt.Errorf("serve: reload %q: database is for pair %q, server runs %q",
			name, db.Pair.Name(), r.pair.Name())
	}
	return train.NewLookupPredictor(db), nil
}

// ReloadDB hot-swaps name with a DB-lookup predictor loaded from a
// profiler database file on disk (written by hmtrain -out), without
// canary validation. The load and sanity checks happen before the swap,
// so a bad file leaves the currently served model untouched.
func (r *Registry) ReloadDB(name, path string) (*Model, error) {
	m, _, err := r.ReloadDBValidated(name, path, nil)
	return m, err
}

// ReloadDBValidated is the canary-gated reload: the candidate snapshot
// is staged (loaded, sanity-checked, assigned its version) and run
// against the golden set; only a passing candidate is installed. A
// failing candidate is quarantined — the active snapshot and the
// prediction cache never see it, which *is* the rollback: traffic keeps
// flowing to the previous version, byte-identically.
func (r *Registry) ReloadDBValidated(name, path string, canary *CanaryConfig) (*Model, CanaryReport, error) {
	p, err := r.loadDBPredictor(name, path)
	if err != nil {
		r.Quarantine(QuarantineInfo{Name: name, Source: "db:" + path, Reason: err.Error()})
		return nil, CanaryReport{}, err
	}
	candidate, err := r.newModel(name, "db:"+path, p)
	if err != nil {
		return nil, CanaryReport{}, err
	}
	rep, err := canary.Validate(candidate)
	if err != nil {
		r.Quarantine(QuarantineInfo{
			Name: name, Version: candidate.Version, Source: candidate.Source,
			Reason: err.Error(),
		})
		return nil, rep, fmt.Errorf("%w: %v", ErrCanaryRejected, err)
	}
	r.install(candidate)
	return candidate, rep, nil
}
