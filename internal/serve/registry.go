package serve

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/train"
)

// Model is one immutable registry entry: a predictor fronted by the
// fault package's fallback chain. In-flight requests hold the *Model
// they resolved; a hot-swap installs a fresh entry without touching the
// old one, so swapping never corrupts requests already being served.
type Model struct {
	// Name is the registry key.
	Name string
	// Version increments monotonically across the whole registry on
	// every (re)registration, so cache keys from a replaced model can
	// never alias the new one's.
	Version uint64
	// Source describes where the model came from, for /v1/models.
	Source string

	chain *fault.Chain
}

// Select consults the model's fallback chain.
func (m *Model) Select(f feature.Vector) fault.Selection {
	return m.chain.Select(f)
}

// PredictorName names the chain's primary predictor.
func (m *Model) PredictorName() string { return m.chain.Name() }

// ModelInfo is the /v1/models wire representation of an entry.
type ModelInfo struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Predictor string `json:"predictor"`
	Source    string `json:"source"`
	Default   bool   `json:"default"`
}

// Registry holds the named, versioned predictors a server dispatches to.
// Reads take a shared lock and return immutable *Model snapshots;
// registration replaces the map entry atomically under the write lock —
// the hot-swap path.
type Registry struct {
	pair machine.Pair

	mu          sync.RWMutex
	models      map[string]*Model
	defaultName string

	version atomic.Uint64
}

// NewRegistry builds an empty registry for an accelerator pair.
func NewRegistry(pair machine.Pair) *Registry {
	return &Registry{pair: pair, models: make(map[string]*Model)}
}

// Pair returns the registry's accelerator pair.
func (r *Registry) Pair() machine.Pair { return r.pair }

// Register installs (or hot-swaps) a model under name. The predictor is
// wrapped in a fallback chain ending, as everywhere else, in the
// analytical decision tree and a fixed deployable default — a served
// prediction is never trusted unconditionally. Extra fallbacks slot in
// between. The first registration becomes the default model.
func (r *Registry) Register(name, source string, p predict.Predictor, fallbacks ...predict.Predictor) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must not be empty")
	}
	if p == nil {
		return nil, fmt.Errorf("serve: model %q: nil predictor", name)
	}
	limits := r.pair.Limits()
	preds := append([]predict.Predictor{p}, fallbacks...)
	if _, isTree := p.(*dtree.Tree); !isTree {
		preds = append(preds, dtree.New(limits))
	}
	m := &Model{
		Name:    name,
		Version: r.version.Add(1),
		Source:  source,
		chain:   fault.NewChain(limits, preds...),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = m
	if r.defaultName == "" {
		r.defaultName = name
	}
	return m, nil
}

// Get resolves a model by name; the empty name selects the default.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultName
	}
	if m, ok := r.models[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("serve: unknown model %q", name)
}

// SetDefault changes which model the empty name resolves to.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	r.defaultName = name
	return nil
}

// List describes every registered model, sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, ModelInfo{
			Name:      m.Name,
			Version:   m.Version,
			Predictor: m.PredictorName(),
			Source:    m.Source,
			Default:   m.Name == r.defaultName,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReloadDB hot-swaps name with a DB-lookup predictor loaded from a
// profiler database file on disk (written by hmtrain -out). The load and
// validation happen before the swap, so a bad file leaves the currently
// served model untouched.
func (r *Registry) ReloadDB(name, path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reload %q: %w", name, err)
	}
	defer f.Close()
	db, err := train.LoadDB(f)
	if err != nil {
		return nil, fmt.Errorf("serve: reload %q: %w", name, err)
	}
	if db.Pair.Name() != r.pair.Name() {
		return nil, fmt.Errorf("serve: reload %q: database is for pair %q, server runs %q",
			name, db.Pair.Name(), r.pair.Name())
	}
	return r.Register(name, "db:"+path, train.NewLookupPredictor(db))
}
