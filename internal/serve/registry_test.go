package serve

import (
	"os"
	"path/filepath"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/train"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	return NewRegistry(machine.PrimaryPair())
}

func TestRegistryRegisterGetDefault(t *testing.T) {
	r := testRegistry(t)
	if _, err := r.Get(""); err == nil {
		t.Fatal("empty registry resolved a default")
	}
	tree, err := r.Register("tree", "builtin", dtree.New(r.Pair().Limits()))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Version != 1 {
		t.Fatalf("first version = %d", tree.Version)
	}
	def, err := r.Get("")
	if err != nil || def.Name != "tree" {
		t.Fatalf("default = %v, %v", def, err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("unknown model resolved")
	}
	if err := r.SetDefault("nope"); err == nil {
		t.Fatal("SetDefault accepted unknown model")
	}
	if _, err := r.Register("", "x", dtree.New(r.Pair().Limits())); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := r.Register("nilp", "x", nil); err == nil {
		t.Fatal("nil predictor accepted")
	}
}

// Hot-swapping bumps the version and leaves the old *Model snapshot
// fully usable — the property in-flight requests rely on.
func TestRegistryHotSwapPreservesOldSnapshot(t *testing.T) {
	r := testRegistry(t)
	limits := r.Pair().Limits()
	old, _ := r.Register("m", "v1", dtree.New(limits))

	fixedM := config.DefaultGPU(limits)
	swapped, err := r.Register("m", "v2", fixedPred{m: fixedM})
	if err != nil {
		t.Fatal(err)
	}
	if swapped.Version <= old.Version {
		t.Fatalf("version did not advance: %d -> %d", old.Version, swapped.Version)
	}

	f := feature.Combine(feature.MustCatalog("BFS"), feature.IVector{0.5, 0.5, 0.5, 0.5})
	oldSel := old.Select(f) // old snapshot still answers
	if err := oldSel.M.Validate(limits); err != nil {
		t.Fatalf("old snapshot invalid after swap: %v", err)
	}
	newSel := swapped.Select(f)
	if newSel.M != fixedM.Clamp(limits) {
		t.Fatalf("new model not serving: %v", newSel.M)
	}
	got, _ := r.Get("m")
	if got.Version != swapped.Version {
		t.Fatalf("registry serves version %d, want %d", got.Version, swapped.Version)
	}
}

func TestRegistryReloadDB(t *testing.T) {
	r := testRegistry(t)
	db := train.BuildDatabase(r.Pair(), train.Config{Samples: 8, Seed: 11})
	path := filepath.Join(t.TempDir(), "model.hmdb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m, err := r.ReloadDB("db", path)
	if err != nil {
		t.Fatal(err)
	}
	if m.PredictorName() != "DB Lookup" {
		t.Fatalf("predictor = %q", m.PredictorName())
	}
	feat := db.Samples[0].Features
	sel := m.Select(feat)
	if err := sel.M.Validate(r.Pair().Limits()); err != nil {
		t.Fatalf("reloaded model answered invalid M: %v", err)
	}

	// A second reload hot-swaps with a fresh version.
	m2, err := r.ReloadDB("db", path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version <= m.Version {
		t.Fatalf("reload did not bump version: %d -> %d", m.Version, m2.Version)
	}

	// Bad paths and corrupt files must not disturb the registry.
	if _, err := r.ReloadDB("db", filepath.Join(t.TempDir(), "missing.hmdb")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.hmdb")
	os.WriteFile(bad, []byte("not a database"), 0o644)
	if _, err := r.ReloadDB("db", bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
	still, err := r.Get("db")
	if err != nil || still.Version != m2.Version {
		t.Fatalf("failed reload disturbed registry: %v %v", still, err)
	}
}

func TestRegistryList(t *testing.T) {
	r := testRegistry(t)
	limits := r.Pair().Limits()
	r.Register("zeta", "z", dtree.New(limits))
	r.Register("alpha", "a", dtree.New(limits))
	list := r.List()
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "zeta" {
		t.Fatalf("list = %+v", list)
	}
	if !list[1].Default || list[0].Default {
		t.Fatalf("default flag wrong: %+v", list)
	}
}

// fixedPred always answers one M.
type fixedPred struct{ m config.M }

func (f fixedPred) Name() string                    { return "FixedTest" }
func (f fixedPred) Predict(feature.Vector) config.M { return f.m }
