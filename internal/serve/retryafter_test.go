package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"heteromap/internal/fault"
)

// A queue-full 503 must carry the anti-stampede backoff hint: standard
// Retry-After in whole seconds plus the millisecond-precision header.
func TestQueueFullRejectCarriesRetryAfter(t *testing.T) {
	inj := fault.NewServeInjector(1)
	inj.SetServeProfile(fault.ServeProfile{QueueRejectRate: 1})
	_, ts := newTestServer(t, Options{Chaos: inj})

	resp, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Bench: "BFS", Vertices: 1e6, Edges: 1e7, MaxDegree: 500, Diameter: 20,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	sec, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
	if err != nil || sec < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1 (err %v)", resp.Header.Get("Retry-After"), err)
	}
	ms, err := strconv.ParseInt(resp.Header.Get(RetryAfterMSHeader), 10, 64)
	if err != nil || ms < 5 || ms > 5000 {
		t.Fatalf("%s = %q, want ms within the hint clamp (err %v)",
			RetryAfterMSHeader, resp.Header.Get(RetryAfterMSHeader), err)
	}
	// The precise hint must not exceed the coarse one.
	if time.Duration(ms)*time.Millisecond > time.Duration(sec)*time.Second {
		t.Fatalf("ms hint %d exceeds Retry-After %ds", ms, sec)
	}
}

// Successful predictions do not carry backoff headers — only sheds do.
func TestSuccessCarriesVersionNotRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Bench: "BFS", Vertices: 1e6, Edges: 1e7, MaxDegree: 500, Diameter: 20,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Fatalf("200 carried Retry-After %q", got)
	}
	if got := resp.Header.Get(VersionHeader); got != "1" {
		t.Fatalf("%s = %q, want 1", VersionHeader, got)
	}
}

func TestRetryAfterHintStaysClamped(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	d := s.RetryAfterHint()
	if d < 5*time.Millisecond || d > 5*time.Second {
		t.Fatalf("hint %v outside [5ms, 5s]", d)
	}
}

func TestRetryAfterFromPrefersPreciseHeader(t *testing.T) {
	mk := func(sec, ms string) *http.Response {
		h := http.Header{}
		if sec != "" {
			h.Set("Retry-After", sec)
		}
		if ms != "" {
			h.Set(RetryAfterMSHeader, ms)
		}
		return &http.Response{Header: h}
	}
	for _, tc := range []struct {
		sec, ms string
		want    time.Duration
	}{
		{"2", "12", 12 * time.Millisecond}, // precise wins
		{"2", "", 2 * time.Second},         // coarse fallback
		{"", "40", 40 * time.Millisecond},
		{"", "", 0},
		{"junk", "junk", 0},
		{"-1", "-5", 0},
	} {
		if got := retryAfterFrom(mk(tc.sec, tc.ms)); got != tc.want {
			t.Fatalf("retryAfterFrom(sec=%q, ms=%q) = %v, want %v", tc.sec, tc.ms, got, tc.want)
		}
	}
}

func TestSleepJitteredCapsAndRespectsDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// A hostile 1-hour hint must cost at most the 250ms cap.
	start := time.Now()
	sleepJittered(rng, time.Hour, time.Now().Add(time.Second))
	if waited := time.Since(start); waited > maxRetryBackoff+100*time.Millisecond {
		t.Fatalf("capped sleep took %v, cap is %v", waited, maxRetryBackoff)
	}
	// A past deadline means no sleep at all.
	start = time.Now()
	sleepJittered(rng, 200*time.Millisecond, time.Now().Add(-time.Second))
	if waited := time.Since(start); waited > 50*time.Millisecond {
		t.Fatalf("post-deadline sleep took %v, want ~0", waited)
	}
}

// The load generator must honor the server's backoff hint: against a
// node that sheds every request with a Retry-After, the client backs off
// (counted) instead of hammering at full speed.
func TestLoadGenHonorsRetryAfterBackoff(t *testing.T) {
	var served int
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, _ *http.Request) {
		served++
		w.Header().Set("Retry-After", "1")
		w.Header().Set(RetryAfterMSHeader, "20")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"serve: prediction queue full"}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	res, err := RunLoadGen(LoadGenOptions{
		URL:         ts.URL,
		Duration:    200 * time.Millisecond,
		Concurrency: 2,
		Combos:      4,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backoffs == 0 {
		t.Fatal("client never honored the Retry-After hint")
	}
	if res.Backoffs != res.Errors {
		t.Fatalf("backoffs %d != shed errors %d: some 503 hints were ignored", res.Backoffs, res.Errors)
	}
	// Honoring ~20ms of backoff per request bounds the hammer rate: two
	// workers over 200ms can land at most ~10 requests each plus slack.
	if res.Requests > 60 {
		t.Fatalf("%d requests in 200ms despite 20ms backoff hints: client is stampeding", res.Requests)
	}
}
