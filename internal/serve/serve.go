// Package serve exposes the HeteroMap predictor stack as a long-running
// prediction service — the natural deployment shape for a *runtime*
// performance predictor whose whole point is making mapping decisions
// online per (benchmark, input) pair.
//
// The pipeline is registry -> batcher -> cache -> predictor -> metrics:
//
//   - a model Registry holds named, versioned predictors (decision tree,
//     the Deep.* networks, regressions, DB lookup), each fronted by the
//     fault package's fallback chain and hot-swappable without dropping
//     in-flight requests;
//   - requests queue into a bounded channel; a worker pool drains them in
//     size/deadline-bounded micro-batches, deduplicating identical
//     discretized characterizations within a batch so one inference
//     answers many callers;
//   - a sharded LRU Cache fronts the predictors, keyed on the model
//     version plus the discretized (B, I) feature key — the paper's
//     0.1-step discretization makes the key space finite, so realistic
//     traffic repeats keys and hit rates are high;
//   - a Metrics layer (atomic counters + latency histograms) exposes the
//     whole pipeline in Prometheus text format on /metrics.
//
// HTTP surface: POST /v1/predict, POST /v1/predict/batch, POST
// /v1/reload, GET /v1/models, GET /healthz, GET /metrics.
package serve

import (
	"fmt"
	"math"

	"heteromap/internal/config"
	"heteromap/internal/feature"
)

// PredictRequest asks for the machine mapping of one benchmark-input
// combination. The characterization arrives either as a benchmark name
// plus raw input-graph counts (the serving analog of the paper's
// programmer-specified path — B from the static catalog, I discretized
// from the counts) or as a raw 17-component feature vector, which is
// snapped onto the discretization grid before prediction.
type PredictRequest struct {
	// Model names a registry entry; empty selects the default model.
	Model string `json:"model,omitempty"`

	// Bench is a paper benchmark name (e.g. "BFS", "SSSP-BF").
	Bench string `json:"bench,omitempty"`
	// Vertices/Edges/MaxDegree/Diameter are the input graph's raw
	// structural counts, discretized server-side into I1-I4.
	Vertices  int64 `json:"vertices,omitempty"`
	Edges     int64 `json:"edges,omitempty"`
	MaxDegree int64 `json:"max_degree,omitempty"`
	Diameter  int64 `json:"diameter,omitempty"`

	// Features is the alternative raw characterization: exactly 17
	// values (B1-B13, I1-I4), each in [0,1].
	Features []float64 `json:"features,omitempty"`
}

// PredictResponse is the mapping decision for one request.
type PredictResponse struct {
	// Model and Version identify the registry entry that answered.
	Model   string `json:"model"`
	Version uint64 `json:"version"`
	// Key is the discretized feature key the prediction is cached under.
	Key string `json:"key"`
	// PredictorUsed names the fallback-chain link that produced M.
	PredictorUsed string `json:"predictor_used"`
	// Cached reports the prediction was answered from the cache.
	Cached bool `json:"cached"`
	// M is the predicted machine-choice vector, serialized with the
	// paper's knob names (see config.M's JSON encoding).
	M config.M `json:"m"`
	// Fallbacks records predictor degradation events, when any.
	Fallbacks []string `json:"fallbacks,omitempty"`
	// Resilience records dispatch-level events that altered how this
	// answer was produced (hedge launched/won, breaker routing, safe
	// default), in pipeline order.
	Resilience []string `json:"resilience,omitempty"`
	// TraceID identifies this request's trace (also echoed in the
	// X-Heteromap-Trace response header); feed it to /v1/explain/{id}
	// for the decision provenance. Empty when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
	// Error is set (and M meaningless) only on per-item failures inside
	// a batch response.
	Error string `json:"error,omitempty"`
}

// BatchRequest carries many predictions in one round trip.
type BatchRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchResponse answers a BatchRequest positionally.
type BatchResponse struct {
	Responses []PredictResponse `json:"responses"`
}

// ResolveFeatures turns a request into the discretized feature vector the
// predictors consume — the single characterization path shared by the
// single-shot and batch endpoints, so served predictions are
// byte-identical to offline core.System runs on the same inputs.
func ResolveFeatures(req *PredictRequest, step float64) (feature.Vector, error) {
	switch {
	case len(req.Features) > 0:
		if req.Bench != "" {
			return feature.Vector{}, fmt.Errorf("serve: request must set either bench or features, not both")
		}
		if len(req.Features) != feature.NumFeatures {
			return feature.Vector{}, fmt.Errorf("serve: features has %d components, want %d",
				len(req.Features), feature.NumFeatures)
		}
		for i, f := range req.Features {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return feature.Vector{}, fmt.Errorf("serve: features[%d] is not finite", i)
			}
			if f < 0 || f > 1 {
				return feature.Vector{}, fmt.Errorf("serve: features[%d] = %g outside [0,1]", i, f)
			}
		}
		var v feature.Vector
		copy(v[:], req.Features)
		return v.Discretized(step), nil

	case req.Bench != "":
		b, err := feature.Catalog(req.Bench)
		if err != nil {
			return feature.Vector{}, fmt.Errorf("serve: %w", err)
		}
		if req.Vertices <= 0 || req.Edges <= 0 || req.MaxDegree <= 0 || req.Diameter <= 0 {
			return feature.Vector{}, fmt.Errorf(
				"serve: bench requests need positive vertices, edges, max_degree and diameter")
		}
		iv := feature.IFromCountsStep(req.Vertices, req.Edges, req.MaxDegree, req.Diameter, step)
		return feature.Combine(b, iv), nil

	default:
		return feature.Vector{}, fmt.Errorf("serve: request sets neither bench nor features")
	}
}
