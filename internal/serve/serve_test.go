package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
)

// newTestServer builds a server with the analytical decision tree
// registered as "tree" and returns it behind httptest.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Pair.GPU == nil {
		opts.Pair = machine.PrimaryPair()
	}
	s := New(opts)
	if _, err := s.Registry().Register("tree", "builtin decision tree",
		dtree.New(opts.Pair.Limits())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// Served predictions — single-shot and batch — must be byte-identical to
// what the offline runtime (core.System.Run) deploys for the same
// (benchmark, input) pair: same characterization path, same chain, same
// M, same JSON bytes. This is the acceptance property of the subsystem.
func TestServedPredictionsMatchCoreRun(t *testing.T) {
	pair := machine.PrimaryPair()
	_, ts := newTestServer(t, Options{Pair: pair})

	sys := core.NewSystem(pair, dtree.New(pair.Limits()), core.Performance)
	datasets := gen.TableICached(gen.Small)[:3]
	benches := algo.All()

	var reqs []PredictRequest
	var wantJSON [][]byte
	for _, b := range benches {
		for _, ds := range datasets {
			w, err := core.Characterize(b, ds)
			if err != nil {
				t.Fatal(err)
			}
			rep := sys.Run(w)
			mj, err := json.Marshal(rep.Chosen)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON = append(wantJSON, mj)
			reqs = append(reqs, PredictRequest{
				Model:     "tree",
				Bench:     b.Name,
				Vertices:  ds.Declared.V,
				Edges:     ds.Declared.E,
				MaxDegree: ds.Declared.MaxDeg,
				Diameter:  ds.Declared.Diameter,
			})
		}
	}

	// Single-shot endpoint.
	for i, req := range reqs {
		resp, body := postJSON(t, ts.URL+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", req.Bench, resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(pr.M)
		if !bytes.Equal(gotJSON, wantJSON[i]) {
			t.Fatalf("%s: served M differs from core run:\n got %s\nwant %s",
				req.Bench, gotJSON, wantJSON[i])
		}
		if pr.PredictorUsed != "Decision Tree" {
			t.Fatalf("predictor used = %q", pr.PredictorUsed)
		}
	}

	// Batch endpoint must agree positionally, byte for byte.
	resp, body := postJSON(t, ts.URL+"/v1/predict/batch", BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != len(reqs) {
		t.Fatalf("batch returned %d responses for %d requests", len(br.Responses), len(reqs))
	}
	for i, pr := range br.Responses {
		if pr.Error != "" {
			t.Fatalf("batch item %d errored: %s", i, pr.Error)
		}
		gotJSON, _ := json.Marshal(pr.M)
		if !bytes.Equal(gotJSON, wantJSON[i]) {
			t.Fatalf("batch item %d differs:\n got %s\nwant %s", i, gotJSON, wantJSON[i])
		}
		// The single-shot pass populated the cache with these keys.
		if !pr.Cached {
			t.Fatalf("batch item %d missed the cache", i)
		}
	}
}

func TestHealthzAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Models != 1 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}

	// Serve one prediction, then scrape.
	postJSON(t, ts.URL+"/v1/predict", PredictRequest{
		Bench: "BFS", Vertices: 4e6, Edges: 1e8, MaxDegree: 9000, Diameter: 30,
	})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"heteromap_requests_total 1",
		"heteromap_cache_misses_total 1",
		`heteromap_model_requests_total{model="tree"} 1`,
		"heteromap_request_duration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestHTTPErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name   string
		url    string
		body   string
		status int
	}{
		{"bad json", "/v1/predict", "{", http.StatusBadRequest},
		{"no characterization", "/v1/predict", "{}", http.StatusBadRequest},
		{"both bench and features", "/v1/predict",
			`{"bench":"BFS","vertices":1,"edges":1,"max_degree":1,"diameter":1,"features":[0.1]}`,
			http.StatusBadRequest},
		{"bad feature count", "/v1/predict", `{"features":[0.1,0.2]}`, http.StatusBadRequest},
		{"unknown bench", "/v1/predict",
			`{"bench":"Nope","vertices":1,"edges":1,"max_degree":1,"diameter":1}`,
			http.StatusBadRequest},
		{"missing counts", "/v1/predict", `{"bench":"BFS"}`, http.StatusBadRequest},
		{"unknown model", "/v1/predict",
			`{"model":"nope","bench":"BFS","vertices":1,"edges":1,"max_degree":1,"diameter":1}`,
			http.StatusNotFound},
		{"empty batch", "/v1/predict/batch", `{"requests":[]}`, http.StatusBadRequest},
		{"reload missing fields", "/v1/reload", `{}`, http.StatusBadRequest},
		{"reload missing file", "/v1/reload", `{"model":"db","path":"/does/not/exist"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	// GET on a POST endpoint.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d", resp.StatusCode)
	}
}

// Hot-swapping a model while requests are in flight must never drop or
// corrupt a request: every response is valid, carries one of the
// registered versions, and decodes to one of the two legitimate Ms.
func TestHotSwapUnderLoad(t *testing.T) {
	pair := machine.PrimaryPair()
	s, ts := newTestServer(t, Options{Pair: pair})
	limits := pair.Limits()

	mA := config.DefaultGPU(limits)
	mB := config.DefaultMulticore(limits)
	wantA, wantB := mA.Clamp(limits), mB.Clamp(limits)
	if _, err := s.Registry().Register("live", "vA", fixedPred{m: mA}); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var swaps atomic.Int64
	var wg sync.WaitGroup

	// Swapper: flip the model as fast as it can.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			p := fixedPred{m: mA}
			src := "vA"
			if i%2 == 1 {
				p = fixedPred{m: mB}
				src = "vB"
			}
			if _, err := s.Registry().Register("live", src, p); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			swaps.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Clients: hammer the swapped model with varying inputs.
	const clients = 8
	var served atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			benches := algo.All()
			for i := 0; !stop.Load(); i++ {
				b := benches[(c+i)%len(benches)]
				resp, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{
					Model: "live", Bench: b.Name,
					Vertices: int64(1e6 * (1 + i%50)), Edges: 1e8,
					MaxDegree: 5000, Diameter: 100,
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Errorf("client %d: decode: %v", c, err)
					return
				}
				if pr.M != wantA && pr.M != wantB {
					t.Errorf("client %d: corrupt M %v", c, pr.M)
					return
				}
				served.Add(1)
			}
		}(c)
	}

	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if served.Load() == 0 || swaps.Load() < 10 {
		t.Fatalf("weak exercise: %d served, %d swaps", served.Load(), swaps.Load())
	}
}

// The load generator must run clean against a live server and report a
// nonzero throughput and a hot cache.
func TestLoadGenAgainstServer(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	res, err := RunLoadGen(LoadGenOptions{
		URL:         ts.URL,
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Combos:      16,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", res.Errors)
	}
	if res.Predictions == 0 || res.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.CacheHitRate <= 0 {
		t.Fatalf("cache never hit: %+v", res)
	}
	if res.P50 <= 0 || res.ServerP50 <= 0 {
		t.Fatalf("latency quantiles missing: %+v", res)
	}
	if !strings.Contains(res.String(), "throughput") {
		t.Fatal("report missing throughput line")
	}

	// Batch mode exercises /v1/predict/batch.
	res, err = RunLoadGen(LoadGenOptions{
		URL: ts.URL, Duration: 200 * time.Millisecond,
		Concurrency: 2, BatchSize: 8, Combos: 16, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Predictions == 0 {
		t.Fatalf("batch loadgen: %+v", res)
	}
}
