package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/durable"
	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/online"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
)

// Options size the serving pipeline; zero values select the defaults in
// parentheses.
type Options struct {
	// Addr is the listen address for Start ("127.0.0.1:8080").
	Addr string
	// Pair is the accelerator pair (machine.PrimaryPair).
	Pair machine.Pair
	// Registry supplies the models; nil builds an empty registry the
	// caller must populate before serving predictions.
	Registry *Registry

	// CacheSize / CacheShards size the prediction cache (4096 / 16).
	CacheSize   int
	CacheShards int
	// QueueSize bounds the request queue (1024); Workers sizes the
	// batch-draining pool (4); MaxBatch and MaxWait bound each
	// micro-batch (64 items / 2ms).
	QueueSize int
	Workers   int
	MaxBatch  int
	MaxWait   time.Duration
	// Step is the feature discretization increment
	// (feature.DiscretizationStep).
	Step float64
	// RequestTimeout bounds one prediction end to end (5s); the
	// deadline propagates through the queue into the batch workers.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a request body (1 MiB); larger bodies are
	// rejected with 413 before decoding.
	MaxBodyBytes int64

	// StageBudget bounds one model inference before the batcher hedges
	// against the last-known-good version (25ms); it is also the
	// per-version breaker's latency SLO.
	StageBudget time.Duration
	// BreakerThreshold/BreakerCooldown configure the per-model-version
	// circuit breakers (5 consecutive SLO violations / 64 refused
	// dispatches before a half-open probe).
	BreakerThreshold int
	BreakerCooldown  int
	// StallTimeout is the batch-worker watchdog's no-progress bound
	// (1s); < 0 disables the watchdog.
	StallTimeout time.Duration

	// Canary gates /v1/reload: candidate snapshots must pass the golden
	// set before replacing the active model (nil: sanity checks only).
	Canary *CanaryConfig
	// Chaos injects serve-path faults for resilience testing (nil:
	// none). The /v1/chaos endpoint is enabled only when this is set.
	Chaos *fault.ServeInjector

	// Online closes the predict -> execute -> learn loop: every served
	// prediction is fed back for outcome collection and drift detection,
	// low-confidence answers are re-derived by exhaustive probe, and
	// drift-triggered shadow retrains promote through the same
	// canary-gated reload path as /v1/reload (nil: no online learning).
	// The /v1/online endpoint is enabled only when this is set.
	Online *online.Manager

	// DurableDir enables serving-tier durability: the prediction cache
	// and registry version counter snapshot to <dir>/cache.snap, and
	// RecoverDurable restores them on restart so a rebooted node answers
	// warm. Empty disables.
	DurableDir string
	// CacheSnapshotEvery is the periodic cache-snapshot cadence started
	// by RecoverDurable (zero: only explicit and shutdown snapshots).
	CacheSnapshotEvery time.Duration
	// Kill is the crash-injection seam threaded through durable writes
	// (nil in production).
	Kill durable.KillFunc

	// Tracer records per-request traces and provenance; nil builds a
	// default tracer unless DisableTracing is set. Supply one explicitly
	// to control sampling, ring size or the log sink.
	Tracer *obs.Tracer
	// DisableTracing turns request tracing off entirely (the
	// obs-overhead benchmark measures this split; production servers
	// should leave it on).
	DisableTracing bool

	// SLO tracks availability and p99-latency objectives over the served
	// traffic and exposes /v1/slo plus the heteromap_slo_* gauges; when
	// its error budget exhausts, the batcher tightens its hedge budget.
	// Nil disables SLO tracking.
	SLO *obs.SLO
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.Pair.GPU == nil || o.Pair.Multicore == nil {
		o.Pair = machine.PrimaryPair()
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Step <= 0 {
		o.Step = feature.DiscretizationStep
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.StageBudget <= 0 {
		o.StageBudget = 25 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 64
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = time.Second
	}
	if o.Tracer == nil && !o.DisableTracing {
		o.Tracer = obs.NewTracer(obs.Options{})
	}
	if o.DisableTracing {
		o.Tracer = nil
	}
	return o
}

// defaultStep is the discretization increment used when no explicit step
// is configured.
func defaultStep() float64 { return feature.DiscretizationStep }

// Server is the prediction service: registry -> batcher -> cache ->
// predictor -> metrics behind an HTTP/JSON API, with canary-gated
// reloads, hedged dispatch and a chaos/watchdog self-healing layer.
type Server struct {
	opts     Options
	registry *Registry
	cache    *Cache
	batcher  *Batcher
	metrics  *Metrics
	tracer   *obs.Tracer // nil when tracing is disabled
	slo      *obs.SLO    // nil when SLO tracking is disabled
	started  time.Time

	// draining flips on BeginDrain: /healthz reports "draining" so a
	// cluster router deregisters this node from its ring, while
	// predictions keep being served — planned shutdown must produce zero
	// 5xx for the window the routers need to move traffic away.
	draining atomic.Bool

	// dur is the durability bookkeeping (durable.go).
	dur serveDurable

	http *http.Server
	// ln is set once by Start and read by Addr, commonly from the
	// goroutine polling for the ephemeral port to bind.
	ln atomic.Pointer[net.Listener]
}

// New assembles a server (without listening; see Start and Handler).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry(opts.Pair)
	}
	reg.SetBreakerPolicy(opts.BreakerThreshold, opts.BreakerCooldown)
	metrics := NewMetrics()
	cache := NewCache(opts.CacheSize, opts.CacheShards)
	s := &Server{
		opts:     opts,
		registry: reg,
		cache:    cache,
		batcher: NewBatcher(cache, metrics, BatcherConfig{
			QueueSize:    opts.QueueSize,
			Workers:      opts.Workers,
			MaxBatch:     opts.MaxBatch,
			MaxWait:      opts.MaxWait,
			StageBudget:  opts.StageBudget,
			StallTimeout: opts.StallTimeout,
			Chaos:        opts.Chaos,
			// opts.SLO may be nil; the bound method is nil-safe, so the
			// batcher can always ask whether the error budget is gone.
			SLOExhausted: opts.SLO.Exhausted,
		}),
		metrics: metrics,
		tracer:  opts.Tracer,
		slo:     opts.SLO,
		started: time.Now(),
	}
	s.http = &http.Server{Addr: opts.Addr, Handler: s.Handler()}
	if on := opts.Online; on != nil {
		// The learning loop's promotion path IS the operator reload path:
		// a shadow database goes through ReloadDBValidated with the same
		// canary config, so a bad retrain quarantines exactly like a bad
		// file reload and can never serve.
		on.BindPromote(func(model, path string) (uint64, error) {
			if model == "" {
				model = on.Model()
			}
			m, _, err := s.registry.ReloadDBValidated(model, path, s.opts.Canary)
			if err != nil {
				s.metrics.ReloadRejected.Add(1)
				// Same defensive purge as a rejected /v1/reload.
				s.cache.PurgeModel(model)
				return 0, err
			}
			s.metrics.ReloadCount.Add(1)
			s.cache.PurgeModel(model)
			return m.Version, nil
		})
		on.BindLive(func(f feature.Vector) config.M {
			m, err := s.registry.Get(on.Model())
			if err != nil {
				return config.DefaultGPU(s.registry.Pair().Limits())
			}
			return m.Select(f).M
		})
	}
	return s
}

// Registry returns the server's model registry.
func (s *Server) Registry() *Registry { return s.registry }

// Metrics returns the server's metrics set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer returns the server's tracer (nil when tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SLO returns the server's SLO tracker (nil when disabled).
func (s *Server) SLO() *obs.SLO { return s.slo }

// startRequestTrace opens the request trace, adopting an inbound
// X-Heteromap-Trace id when a router forwarded the request — that is
// what lets /v1/trace/{id} stitch this process's spans into the
// caller's timeline. The forwarded parent span id and hop count are
// recorded as trace attributes; a hop count at or past obs.MaxHops
// refuses adoption so a forwarding loop cannot extend forever.
func (s *Server) startRequestTrace(r *http.Request, name string) (context.Context, *obs.Trace) {
	inbound := r.Header.Get(obs.TraceHeader)
	hop := r.Header.Get(obs.HopHeader)
	if hop != "" {
		if n, err := strconv.Atoi(hop); err != nil || n < 0 || n >= obs.MaxHops {
			inbound = ""
		}
	}
	ctx, tr := s.tracer.StartTraceID(r.Context(), name, inbound)
	if tr != nil && inbound != "" && tr.ID() == inbound {
		if ps := r.Header.Get(obs.ParentSpanHeader); ps != "" {
			tr.SetAttr("parent_span", ps)
		}
		if hop != "" {
			tr.SetAttr("hop", hop)
		}
	}
	return ctx, tr
}

// Handler returns the API mux (usable under httptest without a socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/predict/batch", s.handlePredictBatch)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/v1/chaos", s.handleChaos)
	mux.HandleFunc("/v1/online", s.handleOnline)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/v1/slo", s.slo.Handler())
	mux.Handle("/v1/explain/", s.tracer.ExplainHandler("/v1/explain/"))
	mux.Handle("/debug/traces", s.tracer.TracesHandler())
	return mux
}

// DebugHandler returns the -debug-addr surface: net/http/pprof plus
// /debug/traces, kept off the API mux's listener so profiling can bind
// a loopback-only port while the API serves externally.
func (s *Server) DebugHandler() http.Handler {
	return obs.DebugMux(s.tracer)
}

// Start listens on Options.Addr and serves until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.opts.Addr, err)
	}
	s.ln.Store(&ln)
	err = s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the bound listen address (valid after Start's Listen).
func (s *Server) Addr() string {
	ln := s.ln.Load()
	if ln == nil {
		return s.opts.Addr
	}
	return (*ln).Addr().String()
}

// Shutdown gracefully stops the HTTP listener, then drains the batcher
// so every queued prediction is still answered, and — when durability
// is enabled — takes a final cache snapshot so the next boot is warm.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.batcher.Stop()
	s.stopSnapshotLoop()
	if s.opts.DurableDir != "" {
		s.SnapshotCache()
	}
	return err
}

// BeginDrain marks the server as draining: /healthz starts reporting
// status "draining" (so cluster routers deregister the node) while
// predictions continue to be served. Call Shutdown once the routers have
// had time to move traffic — the two-step dance is what makes a planned
// node exit produce zero 5xx.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Kill abruptly stops the server without draining: the listener and all
// active connections are closed immediately, resetting in-flight
// requests. It is the in-process stand-in for kill -9 in the cluster
// chaos harness — callers see transport errors, exactly like a crashed
// node. The batcher is stopped asynchronously; Kill itself returns at
// once.
// No snapshot is taken and the snapshot loop is simply abandoned: a
// dead process gets no shutdown courtesies, and recovery must work from
// whatever the last completed snapshot and WAL left behind.
func (s *Server) Kill() {
	s.http.Close()
	go s.batcher.Stop()
	go s.stopSnapshotLoop()
}

// jsonBuf is one pooled JSON scratch buffer with a bound encoder. The
// hot handlers decode every request into and encode every response out
// of one of these, so steady-state JSON framing reuses buffers that have
// already grown to working-set size instead of allocating fresh ones per
// request.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// decodeJSON decodes a body capped at MaxBodyBytes through a pooled
// buffer, distinguishing oversized bodies (413) from malformed ones
// (400).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	if _, err := jb.buf.ReadFrom(body); err != nil {
		jsonBufPool.Put(jb)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decode request: %w", err)
	}
	err := json.Unmarshal(jb.buf.Bytes(), v)
	jsonBufPool.Put(jb)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("decode request: %w", err)
	}
	return http.StatusOK, nil
}

// predictOne runs one request through admission, cache and batcher; the
// returned status is the HTTP code an error should carry. When ctx
// carries a trace, each admission stage is recorded as a span and the
// served answer leaves a provenance record behind.
func (s *Server) predictOne(ctx context.Context, req *PredictRequest) (PredictResponse, int, error) {
	rctx, sp := obs.StartSpan(ctx, "resolve")
	feat, err := ResolveFeatures(req, s.opts.Step)
	if err != nil {
		sp.EndErr(err)
		return PredictResponse{}, http.StatusBadRequest, err
	}
	sp.End()
	_, sp = obs.StartSpan(rctx, "registry")
	model, err := s.registry.Get(req.Model)
	if err != nil {
		sp.EndErr(err)
		return PredictResponse{}, http.StatusNotFound, err
	}
	sp.SetAttr("model", modelVersionTag(model))
	sp.End()
	obs.TraceFromContext(ctx).SetAttr("model", model.Name)

	s.metrics.Requests.Add(1)

	// Cache-hit fast path: answer straight from the LRU before any
	// batcher, queue or span-heavy machinery is touched. The binary key
	// build and the lookup are allocation-free, so a warm request's serve
	// cost is one shard lock — it never pays the micro-batch fill wait.
	// The response is built exactly as the batcher's cache-hit branch
	// builds it, and the same post-serve hooks (online observation,
	// resilience notes, provenance) run, so the two paths are
	// byte-indistinguishable to callers; the differential fastpath suite
	// in internal/conformance enforces that. A miss falls through to the
	// batcher, whose authoritative cache lookup counts it.
	key := cacheKeyFor(model, feat)
	cacheStart := time.Now()
	if val, ok := s.cache.GetFast(key); ok {
		cacheDur := time.Since(cacheStart)
		tid := obs.TraceID(ctx)
		s.metrics.CacheLookup.ObserveTraced(cacheDur, tid)
		obs.AddSpan(rctx, "cache", cacheStart, cacheDur, obs.Attr{Key: "hit", Value: "true"})
		s.metrics.RequestLatency.ObserveTraced(time.Since(cacheStart), tid)
		resp := PredictResponse{
			Model:         model.Name,
			Version:       model.Version,
			Key:           feat.Key(),
			PredictorUsed: val.Used,
			Cached:        true,
			M:             val.M,
			TraceID:       tid,
		}
		if s.opts.Online != nil {
			s.observeOnline(ctx, model, feat, &resp)
		}
		s.noteResilience(ctx, &resp)
		s.recordProvenance(model, feat, &resp)
		return resp, http.StatusOK, nil
	}

	t := &task{
		model:    model,
		hedge:    s.registry.LastGood(req.Model),
		feat:     feat,
		cacheKey: key,
		done:     make(chan taskResult, 1),
	}
	resp, err := s.batcher.Submit(ctx, t)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrQueueFull) {
			status = http.StatusServiceUnavailable
		} else if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		return PredictResponse{}, status, err
	}
	resp.TraceID = obs.TraceID(ctx)
	if s.opts.Online != nil {
		s.observeOnline(ctx, model, feat, &resp)
	}
	s.noteResilience(ctx, &resp)
	s.recordProvenance(model, feat, &resp)
	return resp, http.StatusOK, nil
}

// PredictCached answers one already-resolved characterization from the
// prediction cache alone: the in-process form of the cache-hit fast
// path, for embedders (and the conformance benchmark harness) that need
// the serve-path answer without HTTP or JSON framing. It performs the
// same registry resolve, lookup and metric accounting as a warm
// /v1/predict and is guaranteed allocation-free — the hmbench
// serve/predict-cachehit target and TestPredictCachedZeroAlloc gate it
// at exactly zero allocs per call. A cold key reports ok=false without
// touching the batcher (and without counting a cache miss; callers fall
// back to the full path, which counts it once).
func (s *Server) PredictCached(model string, feat feature.Vector) (m config.M, used string, version uint64, ok bool) {
	mod, err := s.registry.Get(model)
	if err != nil {
		return config.M{}, "", 0, false
	}
	start := time.Now()
	val, hit := s.cache.GetFast(cacheKeyFor(mod, feat))
	if !hit {
		// Not counted as a request (or a miss): the caller re-issues
		// through the full path, which does both exactly once.
		return config.M{}, "", 0, false
	}
	dur := time.Since(start)
	s.metrics.Requests.Add(1)
	s.metrics.CacheLookup.ObserveTraced(dur, "")
	s.metrics.RequestLatency.ObserveTraced(dur, "")
	return val.M, val.Used, mod.Version, true
}

// observeOnline is the serve-path end of the learning loop: it assesses
// the answer's confidence, re-derives low-confidence answers by bounded
// exhaustive probe, and enqueues the final decision into the feedback
// stream for background outcome collection.
func (s *Server) observeOnline(ctx context.Context, model *Model, feat feature.Vector, resp *PredictResponse) {
	on := s.opts.Online
	if !resp.Cached && on.UncertaintyFloor() > 0 {
		conf, probe := on.Assess(model.Link(resp.PredictorUsed), feat)
		if probe {
			_, sp := obs.StartSpan(ctx, "probe")
			pm, _ := on.Probe(feat)
			sp.SetAttr("confidence", strconv.FormatFloat(conf, 'g', 3, 64))
			sp.End()
			ev := fmt.Sprintf("probe: %s confidence %.3f below floor %.3f; exhaustive probe served",
				resp.PredictorUsed, conf, on.UncertaintyFloor())
			resp.M = pm
			resp.PredictorUsed = online.ProbePredictor
			resp.Resilience = append(resp.Resilience, ev)
			// Overwrite the cache so repeats of this cell serve the probed
			// answer without re-sweeping.
			s.cache.Put(cacheKeyFor(model, feat), cachedPrediction{M: pm, Used: online.ProbePredictor})
		}
	}
	on.Observe(online.Sample{
		Key:       resp.Key,
		Features:  feat,
		M:         resp.M,
		Model:     resp.Model,
		Predictor: resp.PredictorUsed,
		TraceID:   resp.TraceID,
		Probed:    resp.PredictorUsed == online.ProbePredictor,
	})
}

// handleOnline reports the learning loop's state; it is live only when
// the server was started with online learning enabled.
func (s *Server) handleOnline(w http.ResponseWriter, r *http.Request) {
	if s.opts.Online == nil {
		s.errorJSON(r.Context(), w, http.StatusConflict,
			fmt.Errorf("online learning not enabled (start with -online)"))
		return
	}
	if r.Method != http.MethodGet {
		s.errorJSON(r.Context(), w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.opts.Online.Snapshot())
}

// noteResilience flags the trace and logs a correlated slog line for
// every event that altered the answer — fallback-chain degradations and
// hedge/breaker/safe-default dispatch decisions — so flagged traces are
// always retained and findable from the logs.
func (s *Server) noteResilience(ctx context.Context, resp *PredictResponse) {
	if s.tracer == nil {
		return
	}
	if len(resp.Fallbacks) > 0 {
		obs.KeepTrace(ctx, obs.FlagFallback)
		s.tracer.Log(ctx, slog.LevelWarn, "predictor fallback",
			"model", resp.Model, "used", resp.PredictorUsed,
			"events", strings.Join(resp.Fallbacks, "; "))
	}
	for _, ev := range resp.Resilience {
		level := slog.LevelInfo
		if strings.HasPrefix(ev, "safe-default:") {
			level = slog.LevelWarn
		}
		s.tracer.Log(ctx, level, "resilience event", "model", resp.Model, "event", ev)
	}
}

// recordProvenance stores the decision record served from
// /v1/explain/{trace-id}: the exact knobs returned plus how the
// answering learner decided (tree path or NN margin, re-derived from
// the immutable snapshot the request resolved).
func (s *Server) recordProvenance(model *Model, feat feature.Vector, resp *PredictResponse) {
	if s.tracer == nil || resp.TraceID == "" {
		return
	}
	p := obs.Provenance{
		TraceID:       resp.TraceID,
		Model:         resp.Model,
		Version:       resp.Version,
		PredictorUsed: resp.PredictorUsed,
		M:             resp.M,
		Cached:        resp.Cached,
		Events:        append(append([]string{}, resp.Fallbacks...), resp.Resilience...),
		When:          time.Now(),
	}
	// A hedged answer came from a different snapshot; re-derive learner
	// detail from the version that actually answered when we still hold
	// it, otherwise from the admitted model's link of the same name.
	link := model.Link(resp.PredictorUsed)
	if lg := s.registry.LastGood(model.Name); lg != nil && lg.Version == resp.Version {
		if l := lg.Link(resp.PredictorUsed); l != nil {
			link = l
		}
	}
	switch l := link.(type) {
	case *dtree.Tree:
		_, path := l.ExplainPredict(feat)
		p.DTreePath = path
	case *nn.Network:
		margin := l.M1Margin(feat)
		p.NNMargin = &margin
	}
	s.tracer.Prov().Add(p)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(r.Context(), w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	ctx, tr := s.startRequestTrace(r, "predict")
	defer tr.Finish()
	if tr != nil {
		w.Header().Set(obs.TraceHeader, tr.ID())
	}
	_, sp := obs.StartSpan(ctx, "decode")
	var req PredictRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		sp.EndErr(err)
		s.errorJSON(ctx, w, status, err)
		s.slo.Observe(status < 500, time.Since(start))
		return
	}
	sp.End()
	ctx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel()
	resp, status, err := s.predictOne(ctx, &req)
	if err != nil {
		if status == http.StatusServiceUnavailable && errors.Is(err, ErrQueueFull) {
			s.setRetryAfter(w)
		}
		s.errorJSON(ctx, w, status, err)
		s.slo.Observe(status < 500, time.Since(start))
		return
	}
	// The answering model version rides a header so cluster routers can
	// track peer registry generations without decoding the body.
	w.Header().Set(VersionHeader, strconv.FormatUint(resp.Version, 10))
	s.writeJSON(w, http.StatusOK, resp)
	s.slo.Observe(true, time.Since(start))
}

// VersionHeader carries the registry version of the model that answered
// (on predictions) or would answer (on /healthz probes). Cluster routers
// compare it across peers so hedged pairs never mix model versions
// mid-rolling-reload.
const VersionHeader = "X-Heteromap-Model-Version"

// RetryAfterMSHeader is the millisecond-precision companion to the
// standard Retry-After header on 503 responses — Retry-After only speaks
// integer seconds, far too coarse for a queue that drains in
// milliseconds.
const RetryAfterMSHeader = "X-Heteromap-Retry-After-Ms"

// RetryAfterHint estimates how long a shed caller should wait before
// retrying, derived from the live queue depth: the number of micro-batch
// rounds needed to drain the backlog times the per-batch deadline. A
// saturated node thereby spreads its retry wave instead of inviting an
// immediate stampede.
func (s *Server) RetryAfterHint() time.Duration {
	depth := s.batcher.QueueDepth()
	perRound := s.opts.Workers * s.opts.MaxBatch
	if perRound < 1 {
		perRound = 1
	}
	rounds := depth/perRound + 1
	d := time.Duration(rounds) * s.opts.MaxWait
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// setRetryAfter stamps the backoff hint on a 503: standard Retry-After
// in whole seconds (rounded up, as the RFC requires) plus the precise
// millisecond header well-behaved clients prefer.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	d := s.RetryAfterHint()
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set(RetryAfterMSHeader, strconv.FormatInt(d.Milliseconds(), 10))
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(r.Context(), w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	start := time.Now()
	// One trace covers the whole batch; every item's spans and
	// provenance records attach to it. The SLO sees the round trip once,
	// matching how the availability floor counts requests.
	defer func() { s.slo.Observe(true, time.Since(start)) }()
	tctx, tr := s.startRequestTrace(r, "predict-batch")
	defer tr.Finish()
	if tr != nil {
		w.Header().Set(obs.TraceHeader, tr.ID())
	}
	var req BatchRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		s.errorJSON(tctx, w, status, err)
		return
	}
	if len(req.Requests) == 0 {
		s.errorJSON(tctx, w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	ctx, cancel := context.WithTimeout(tctx, s.opts.RequestTimeout)
	defer cancel()

	// Fan the whole batch into the queue concurrently so the batcher
	// can drain it as one (or a few) micro-batches.
	resps := make([]PredictResponse, len(req.Requests))
	done := make(chan int, len(req.Requests))
	for i := range req.Requests {
		go func(i int) {
			defer func() { done <- i }()
			resp, _, err := s.predictOne(ctx, &req.Requests[i])
			if err != nil {
				resps[i] = PredictResponse{Error: err.Error()}
				return
			}
			resps[i] = resp
		}(i)
	}
	for range req.Requests {
		<-done
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Responses: resps})
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"models":     s.registry.List(),
		"quarantine": s.registry.Quarantined(),
	})
}

// reloadRequest is the /v1/reload body: hot-swap model from a profiler
// database file on disk, gated by the canary golden set when one is
// configured.
type reloadRequest struct {
	Model string `json:"model"`
	Path  string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(r.Context(), w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	ctx, tr := s.tracer.StartTrace(r.Context(), "reload")
	defer tr.Finish()
	if tr != nil {
		w.Header().Set(obs.TraceHeader, tr.ID())
	}
	var req reloadRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		s.errorJSON(ctx, w, status, err)
		return
	}
	if req.Model == "" || req.Path == "" {
		s.errorJSON(ctx, w, http.StatusBadRequest, fmt.Errorf("reload needs model and path"))
		return
	}
	tr.SetAttr("model", req.Model)
	if s.opts.Chaos.CorruptReload() {
		// Injected corrupt snapshot: quarantine the attempt exactly as a
		// real corruption would be, leaving the active model untouched.
		s.registry.Quarantine(QuarantineInfo{
			Name: req.Model, Source: "db:" + req.Path,
			Reason: "chaos: snapshot corrupted in flight",
		})
		s.metrics.ReloadRejected.Add(1)
		tr.Keep(obs.FlagCanaryReject)
		s.tracer.Log(ctx, slog.LevelError, "reload rejected",
			"model", req.Model, "reason", "chaos: snapshot corrupted in flight")
		s.errorJSON(ctx, w, http.StatusUnprocessableEntity,
			fmt.Errorf("reload %q: snapshot corrupted in flight (chaos)", req.Model))
		return
	}
	if s.opts.Canary != nil {
		s.metrics.CanaryRuns.Add(1)
	}
	_, sp := obs.StartSpan(ctx, "canary")
	m, canary, err := s.registry.ReloadDBValidated(req.Model, req.Path, s.opts.Canary)
	if err != nil {
		sp.EndErr(err)
		s.metrics.ReloadRejected.Add(1)
		// Defensive: a rejected candidate never served, so its version
		// can have no cache entries — purge proves it stays that way.
		s.cache.PurgeModel(req.Model)
		status := http.StatusBadRequest
		if errors.Is(err, ErrCanaryRejected) {
			status = http.StatusUnprocessableEntity
			tr.Keep(obs.FlagCanaryReject)
		}
		s.tracer.Log(ctx, slog.LevelError, "reload rejected",
			"model", req.Model, "path", req.Path, "reason", err.Error())
		s.errorJSON(ctx, w, status, err)
		return
	}
	sp.End()
	s.metrics.ReloadCount.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"model": ModelInfo{
			Name: m.Name, Version: m.Version, Predictor: m.PredictorName(),
			Source: m.Source, Breaker: m.Breaker().State().String(),
		},
		"canary": canary,
	})
}

// chaosRequest is the /v1/chaos body; rates in [0,1], delays in
// milliseconds, so the profile is scriptable from curl.
type chaosRequest struct {
	SlowModelRate     float64 `json:"slow_model_rate"`
	SlowModelMS       float64 `json:"slow_model_ms"`
	StallWorkerRate   float64 `json:"stall_worker_rate"`
	StallWorkerMS     float64 `json:"stall_worker_ms"`
	CorruptReloadRate float64 `json:"corrupt_reload_rate"`
	QueueRejectRate   float64 `json:"queue_reject_rate"`
}

// handleChaos reads (GET) or flips (POST) the serve fault profile; it is
// live only when the server was started with a chaos injector.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if s.opts.Chaos == nil {
		s.errorJSON(r.Context(), w, http.StatusConflict,
			fmt.Errorf("chaos injection not enabled (start with -chaos-serve)"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		p := s.opts.Chaos.ServeProfile()
		s.writeJSON(w, http.StatusOK, chaosRequest{
			SlowModelRate:     p.SlowModelRate,
			SlowModelMS:       float64(p.SlowModelDelay.Milliseconds()),
			StallWorkerRate:   p.StallWorkerRate,
			StallWorkerMS:     float64(p.StallWorkerDelay.Milliseconds()),
			CorruptReloadRate: p.CorruptReloadRate,
			QueueRejectRate:   p.QueueRejectRate,
		})
	case http.MethodPost:
		var req chaosRequest
		if status, err := s.decodeJSON(w, r, &req); err != nil {
			s.errorJSON(r.Context(), w, status, err)
			return
		}
		s.opts.Chaos.SetServeProfile(fault.ServeProfile{
			SlowModelRate:     req.SlowModelRate,
			SlowModelDelay:    time.Duration(req.SlowModelMS * float64(time.Millisecond)),
			StallWorkerRate:   req.StallWorkerRate,
			StallWorkerDelay:  time.Duration(req.StallWorkerMS * float64(time.Millisecond)),
			CorruptReloadRate: req.CorruptReloadRate,
			QueueRejectRate:   req.QueueRejectRate,
		})
		s.writeJSON(w, http.StatusOK, map[string]string{
			"profile": s.opts.Chaos.ServeProfile().String(),
		})
	default:
		s.errorJSON(r.Context(), w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	version := s.registry.DefaultVersion()
	w.Header().Set(VersionHeader, strconv.FormatUint(version, 10))
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"pair":             s.registry.Pair().Name(),
		"models":           len(s.registry.List()),
		"quarantined":      len(s.registry.Quarantined()),
		"registry_version": version,
		"uptime_seconds":   time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The full text-exposition 0.0.4 Content-Type, charset included —
	// some scrapers fall back to protobuf negotiation or mis-decode
	// without it.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, s.cache, s.batcher.QueueDepth, s.registry.List())
	// The online exposition is appended after the core one so the core's
	// byte-exact golden test stays untouched.
	if s.opts.Online != nil {
		s.opts.Online.WritePrometheus(w)
	}
	if s.opts.DurableDir != "" {
		s.writeDurableMetrics(w)
	}
	s.slo.WritePrometheus(w)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		// Unlike the old stream-to-socket encoder, nothing has been sent
		// yet, so an unencodable value can still answer a clean 500.
		jsonBufPool.Put(jb)
		s.metrics.HTTPErrors.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(jb.buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(jb.buf.Bytes()); err != nil {
		// Headers are gone; nothing more useful to do than count it.
		s.metrics.HTTPErrors.Add(1)
	}
	jsonBufPool.Put(jb)
}

// errorJSON answers an error response; server-side failures (5xx) flag
// the ctx's trace for retention and emit a correlated slog line, so
// every 5xx and deadline drop is findable in /debug/traces by trace id.
func (s *Server) errorJSON(ctx context.Context, w http.ResponseWriter, status int, err error) {
	s.metrics.HTTPErrors.Add(1)
	if status >= 500 {
		obs.KeepTrace(ctx, obs.Flag5xx)
		if errors.Is(err, context.DeadlineExceeded) {
			obs.KeepTrace(ctx, obs.FlagDeadline)
		}
		if s.tracer != nil {
			s.tracer.Log(ctx, slog.LevelError, "request failed",
				"status", status, "error", err.Error())
		}
	}
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}
