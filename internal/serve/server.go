package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
)

// Options size the serving pipeline; zero values select the defaults in
// parentheses.
type Options struct {
	// Addr is the listen address for Start ("127.0.0.1:8080").
	Addr string
	// Pair is the accelerator pair (machine.PrimaryPair).
	Pair machine.Pair
	// Registry supplies the models; nil builds an empty registry the
	// caller must populate before serving predictions.
	Registry *Registry

	// CacheSize / CacheShards size the prediction cache (4096 / 16).
	CacheSize   int
	CacheShards int
	// QueueSize bounds the request queue (1024); Workers sizes the
	// batch-draining pool (4); MaxBatch and MaxWait bound each
	// micro-batch (64 items / 2ms).
	QueueSize int
	Workers   int
	MaxBatch  int
	MaxWait   time.Duration
	// Step is the feature discretization increment
	// (feature.DiscretizationStep).
	Step float64
	// RequestTimeout bounds one prediction end to end (5s); the
	// deadline propagates through the queue into the batch workers.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a request body (1 MiB); larger bodies are
	// rejected with 413 before decoding.
	MaxBodyBytes int64

	// StageBudget bounds one model inference before the batcher hedges
	// against the last-known-good version (25ms); it is also the
	// per-version breaker's latency SLO.
	StageBudget time.Duration
	// BreakerThreshold/BreakerCooldown configure the per-model-version
	// circuit breakers (5 consecutive SLO violations / 64 refused
	// dispatches before a half-open probe).
	BreakerThreshold int
	BreakerCooldown  int
	// StallTimeout is the batch-worker watchdog's no-progress bound
	// (1s); < 0 disables the watchdog.
	StallTimeout time.Duration

	// Canary gates /v1/reload: candidate snapshots must pass the golden
	// set before replacing the active model (nil: sanity checks only).
	Canary *CanaryConfig
	// Chaos injects serve-path faults for resilience testing (nil:
	// none). The /v1/chaos endpoint is enabled only when this is set.
	Chaos *fault.ServeInjector
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.Pair.GPU == nil || o.Pair.Multicore == nil {
		o.Pair = machine.PrimaryPair()
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Step <= 0 {
		o.Step = feature.DiscretizationStep
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.StageBudget <= 0 {
		o.StageBudget = 25 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 64
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = time.Second
	}
	return o
}

// defaultStep is the discretization increment used when no explicit step
// is configured.
func defaultStep() float64 { return feature.DiscretizationStep }

// Server is the prediction service: registry -> batcher -> cache ->
// predictor -> metrics behind an HTTP/JSON API, with canary-gated
// reloads, hedged dispatch and a chaos/watchdog self-healing layer.
type Server struct {
	opts     Options
	registry *Registry
	cache    *Cache
	batcher  *Batcher
	metrics  *Metrics
	started  time.Time

	http *http.Server
	ln   net.Listener
}

// New assembles a server (without listening; see Start and Handler).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry(opts.Pair)
	}
	reg.SetBreakerPolicy(opts.BreakerThreshold, opts.BreakerCooldown)
	metrics := NewMetrics()
	cache := NewCache(opts.CacheSize, opts.CacheShards)
	s := &Server{
		opts:     opts,
		registry: reg,
		cache:    cache,
		batcher: NewBatcher(cache, metrics, BatcherConfig{
			QueueSize:    opts.QueueSize,
			Workers:      opts.Workers,
			MaxBatch:     opts.MaxBatch,
			MaxWait:      opts.MaxWait,
			StageBudget:  opts.StageBudget,
			StallTimeout: opts.StallTimeout,
			Chaos:        opts.Chaos,
		}),
		metrics: metrics,
		started: time.Now(),
	}
	s.http = &http.Server{Addr: opts.Addr, Handler: s.Handler()}
	return s
}

// Registry returns the server's model registry.
func (s *Server) Registry() *Registry { return s.registry }

// Metrics returns the server's metrics set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the API mux (usable under httptest without a socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/predict/batch", s.handlePredictBatch)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/v1/chaos", s.handleChaos)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Start listens on Options.Addr and serves until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.opts.Addr, err)
	}
	s.ln = ln
	err = s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the bound listen address (valid after Start's Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.opts.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the HTTP listener, then drains the batcher
// so every queued prediction is still answered.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.batcher.Stop()
	return err
}

// decodeJSON decodes a body capped at MaxBodyBytes, distinguishing
// oversized bodies (413) from malformed ones (400).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decode request: %w", err)
	}
	return http.StatusOK, nil
}

// predictOne runs one request through admission, cache and batcher; the
// returned status is the HTTP code an error should carry.
func (s *Server) predictOne(ctx context.Context, req *PredictRequest) (PredictResponse, int, error) {
	feat, err := ResolveFeatures(req, s.opts.Step)
	if err != nil {
		return PredictResponse{}, http.StatusBadRequest, err
	}
	model, err := s.registry.Get(req.Model)
	if err != nil {
		return PredictResponse{}, http.StatusNotFound, err
	}
	s.metrics.Requests.Add(1)
	t := &task{
		model:    model,
		hedge:    s.registry.LastGood(req.Model),
		feat:     feat,
		cacheKey: cacheKeyFor(model, feat),
		done:     make(chan taskResult, 1),
	}
	resp, err := s.batcher.Submit(ctx, t)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrQueueFull) {
			status = http.StatusServiceUnavailable
		} else if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		return PredictResponse{}, status, err
	}
	return resp, http.StatusOK, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	var req PredictRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		s.errorJSON(w, status, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	resp, status, err := s.predictOne(ctx, &req)
	if err != nil {
		s.errorJSON(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	var req BatchRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		s.errorJSON(w, status, err)
		return
	}
	if len(req.Requests) == 0 {
		s.errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	// Fan the whole batch into the queue concurrently so the batcher
	// can drain it as one (or a few) micro-batches.
	resps := make([]PredictResponse, len(req.Requests))
	done := make(chan int, len(req.Requests))
	for i := range req.Requests {
		go func(i int) {
			defer func() { done <- i }()
			resp, _, err := s.predictOne(ctx, &req.Requests[i])
			if err != nil {
				resps[i] = PredictResponse{Error: err.Error()}
				return
			}
			resps[i] = resp
		}(i)
	}
	for range req.Requests {
		<-done
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Responses: resps})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"models":     s.registry.List(),
		"quarantine": s.registry.Quarantined(),
	})
}

// reloadRequest is the /v1/reload body: hot-swap model from a profiler
// database file on disk, gated by the canary golden set when one is
// configured.
type reloadRequest struct {
	Model string `json:"model"`
	Path  string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req reloadRequest
	if status, err := s.decodeJSON(w, r, &req); err != nil {
		s.errorJSON(w, status, err)
		return
	}
	if req.Model == "" || req.Path == "" {
		s.errorJSON(w, http.StatusBadRequest, fmt.Errorf("reload needs model and path"))
		return
	}
	if s.opts.Chaos.CorruptReload() {
		// Injected corrupt snapshot: quarantine the attempt exactly as a
		// real corruption would be, leaving the active model untouched.
		s.registry.Quarantine(QuarantineInfo{
			Name: req.Model, Source: "db:" + req.Path,
			Reason: "chaos: snapshot corrupted in flight",
		})
		s.metrics.ReloadRejected.Add(1)
		s.errorJSON(w, http.StatusUnprocessableEntity,
			fmt.Errorf("reload %q: snapshot corrupted in flight (chaos)", req.Model))
		return
	}
	if s.opts.Canary != nil {
		s.metrics.CanaryRuns.Add(1)
	}
	m, canary, err := s.registry.ReloadDBValidated(req.Model, req.Path, s.opts.Canary)
	if err != nil {
		s.metrics.ReloadRejected.Add(1)
		// Defensive: a rejected candidate never served, so its version
		// can have no cache entries — purge proves it stays that way.
		s.cache.PurgePrefix(req.Model + "@")
		status := http.StatusBadRequest
		if errors.Is(err, ErrCanaryRejected) {
			status = http.StatusUnprocessableEntity
		}
		s.errorJSON(w, status, err)
		return
	}
	s.metrics.ReloadCount.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"model": ModelInfo{
			Name: m.Name, Version: m.Version, Predictor: m.PredictorName(),
			Source: m.Source, Breaker: m.Breaker().State().String(),
		},
		"canary": canary,
	})
}

// chaosRequest is the /v1/chaos body; rates in [0,1], delays in
// milliseconds, so the profile is scriptable from curl.
type chaosRequest struct {
	SlowModelRate     float64 `json:"slow_model_rate"`
	SlowModelMS       float64 `json:"slow_model_ms"`
	StallWorkerRate   float64 `json:"stall_worker_rate"`
	StallWorkerMS     float64 `json:"stall_worker_ms"`
	CorruptReloadRate float64 `json:"corrupt_reload_rate"`
	QueueRejectRate   float64 `json:"queue_reject_rate"`
}

// handleChaos reads (GET) or flips (POST) the serve fault profile; it is
// live only when the server was started with a chaos injector.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if s.opts.Chaos == nil {
		s.errorJSON(w, http.StatusConflict,
			fmt.Errorf("chaos injection not enabled (start with -chaos-serve)"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		p := s.opts.Chaos.ServeProfile()
		s.writeJSON(w, http.StatusOK, chaosRequest{
			SlowModelRate:     p.SlowModelRate,
			SlowModelMS:       float64(p.SlowModelDelay.Milliseconds()),
			StallWorkerRate:   p.StallWorkerRate,
			StallWorkerMS:     float64(p.StallWorkerDelay.Milliseconds()),
			CorruptReloadRate: p.CorruptReloadRate,
			QueueRejectRate:   p.QueueRejectRate,
		})
	case http.MethodPost:
		var req chaosRequest
		if status, err := s.decodeJSON(w, r, &req); err != nil {
			s.errorJSON(w, status, err)
			return
		}
		s.opts.Chaos.SetServeProfile(fault.ServeProfile{
			SlowModelRate:     req.SlowModelRate,
			SlowModelDelay:    time.Duration(req.SlowModelMS * float64(time.Millisecond)),
			StallWorkerRate:   req.StallWorkerRate,
			StallWorkerDelay:  time.Duration(req.StallWorkerMS * float64(time.Millisecond)),
			CorruptReloadRate: req.CorruptReloadRate,
			QueueRejectRate:   req.QueueRejectRate,
		})
		s.writeJSON(w, http.StatusOK, map[string]string{
			"profile": s.opts.Chaos.ServeProfile().String(),
		})
	default:
		s.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"pair":           s.registry.Pair().Name(),
		"models":         len(s.registry.List()),
		"quarantined":    len(s.registry.Quarantined()),
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w, s.cache, s.batcher.QueueDepth, s.registry.List())
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more useful to do than count it.
		s.metrics.HTTPErrors.Add(1)
	}
}

func (s *Server) errorJSON(w http.ResponseWriter, status int, err error) {
	s.metrics.HTTPErrors.Add(1)
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}
