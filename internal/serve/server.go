package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"heteromap/internal/feature"
	"heteromap/internal/machine"
)

// Options size the serving pipeline; zero values select the defaults in
// parentheses.
type Options struct {
	// Addr is the listen address for Start ("127.0.0.1:8080").
	Addr string
	// Pair is the accelerator pair (machine.PrimaryPair).
	Pair machine.Pair
	// Registry supplies the models; nil builds an empty registry the
	// caller must populate before serving predictions.
	Registry *Registry

	// CacheSize / CacheShards size the prediction cache (4096 / 16).
	CacheSize   int
	CacheShards int
	// QueueSize bounds the request queue (1024); Workers sizes the
	// batch-draining pool (4); MaxBatch and MaxWait bound each
	// micro-batch (64 items / 2ms).
	QueueSize int
	Workers   int
	MaxBatch  int
	MaxWait   time.Duration
	// Step is the feature discretization increment
	// (feature.DiscretizationStep).
	Step float64
	// RequestTimeout bounds one prediction end to end (5s).
	RequestTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.Pair.GPU == nil || o.Pair.Multicore == nil {
		o.Pair = machine.PrimaryPair()
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 4096
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Step <= 0 {
		o.Step = feature.DiscretizationStep
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	return o
}

// Server is the prediction service: registry -> batcher -> cache ->
// predictor -> metrics behind an HTTP/JSON API.
type Server struct {
	opts     Options
	registry *Registry
	cache    *Cache
	batcher  *Batcher
	metrics  *Metrics
	started  time.Time

	http *http.Server
	ln   net.Listener
}

// New assembles a server (without listening; see Start and Handler).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry(opts.Pair)
	}
	metrics := NewMetrics()
	cache := NewCache(opts.CacheSize, opts.CacheShards)
	s := &Server{
		opts:     opts,
		registry: reg,
		cache:    cache,
		batcher:  NewBatcher(cache, metrics, opts.QueueSize, opts.Workers, opts.MaxBatch, opts.MaxWait),
		metrics:  metrics,
		started:  time.Now(),
	}
	s.http = &http.Server{Addr: opts.Addr, Handler: s.Handler()}
	return s
}

// Registry returns the server's model registry.
func (s *Server) Registry() *Registry { return s.registry }

// Metrics returns the server's metrics set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the API mux (usable under httptest without a socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/predict/batch", s.handlePredictBatch)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Start listens on Options.Addr and serves until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.opts.Addr, err)
	}
	s.ln = ln
	err = s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the bound listen address (valid after Start's Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.opts.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the HTTP listener, then drains the batcher
// so every queued prediction is still answered.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.batcher.Stop()
	return err
}

// predictOne runs one request through admission, cache and batcher; the
// returned status is the HTTP code an error should carry.
func (s *Server) predictOne(ctx context.Context, req *PredictRequest) (PredictResponse, int, error) {
	feat, err := ResolveFeatures(req, s.opts.Step)
	if err != nil {
		return PredictResponse{}, http.StatusBadRequest, err
	}
	model, err := s.registry.Get(req.Model)
	if err != nil {
		return PredictResponse{}, http.StatusNotFound, err
	}
	s.metrics.Requests.Add(1)
	t := &task{
		model:    model,
		feat:     feat,
		cacheKey: cacheKeyFor(model, feat),
		done:     make(chan taskResult, 1),
	}
	resp, err := s.batcher.Submit(ctx, t)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrQueueFull) {
			status = http.StatusServiceUnavailable
		} else if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		return PredictResponse{}, status, err
	}
	return resp, http.StatusOK, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	resp, status, err := s.predictOne(ctx, &req)
	if err != nil {
		s.errorJSON(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.metrics.InFlight.Add(1)
	defer s.metrics.InFlight.Add(-1)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		s.errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	// Fan the whole batch into the queue concurrently so the batcher
	// can drain it as one (or a few) micro-batches.
	resps := make([]PredictResponse, len(req.Requests))
	done := make(chan int, len(req.Requests))
	for i := range req.Requests {
		go func(i int) {
			defer func() { done <- i }()
			resp, _, err := s.predictOne(ctx, &req.Requests[i])
			if err != nil {
				resps[i] = PredictResponse{Error: err.Error()}
				return
			}
			resps[i] = resp
		}(i)
	}
	for range req.Requests {
		<-done
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Responses: resps})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"models": s.registry.List()})
}

// reloadRequest is the /v1/reload body: hot-swap model from a profiler
// database file on disk.
type reloadRequest struct {
	Model string `json:"model"`
	Path  string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req reloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Model == "" || req.Path == "" {
		s.errorJSON(w, http.StatusBadRequest, fmt.Errorf("reload needs model and path"))
		return
	}
	m, err := s.registry.ReloadDB(req.Model, req.Path)
	if err != nil {
		s.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.ReloadCount.Add(1)
	s.writeJSON(w, http.StatusOK, ModelInfo{
		Name: m.Name, Version: m.Version, Predictor: m.PredictorName(), Source: m.Source,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"pair":           s.registry.Pair().Name(),
		"models":         len(s.registry.List()),
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w, s.cache, s.batcher.QueueDepth)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more useful to do than count it.
		s.metrics.HTTPErrors.Add(1)
	}
}

func (s *Server) errorJSON(w http.ResponseWriter, status int, err error) {
	s.metrics.HTTPErrors.Add(1)
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}
