// Package stats provides the small numeric helpers used throughout the
// HeteroMap reproduction: geometric means, clamping, normalization and
// simple descriptive statistics over float64 slices.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one value.
var ErrEmpty = errors.New("stats: empty input")

// Geomean returns the geometric mean of xs. All values must be positive;
// non-positive values or an empty slice yield an error.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// MustGeomean is Geomean for inputs known to be valid; it panics on error.
// It is intended for experiment drivers whose inputs are produced internally.
func MustGeomean(xs []float64) float64 {
	g, err := Geomean(xs)
	if err != nil {
		panic(err)
	}
	return g
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value in xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest value in xs, or -1 for an empty
// slice. Ties resolve to the earliest index, which keeps sweeps deterministic.
func ArgMin(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest value in xs, or -1 for an empty
// slice.
func ArgMax(xs []float64) int {
	best := -1
	for i, x := range xs {
		if best < 0 || x > xs[best] {
			best = i
		}
	}
	return best
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to the inclusive range [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Discretize snaps x (clamped to [0,1]) to the nearest multiple of step.
// The paper discretizes B and I variables to increments of 0.1; passing
// step=0.1 reproduces that. A non-positive step returns x clamped.
func Discretize(x, step float64) float64 {
	x = Clamp(x, 0, 1)
	if step <= 0 {
		return x
	}
	return Clamp(math.Round(x/step)*step, 0, 1)
}

// LogNormalize maps v into [0,1] on a logarithmic scale anchored at
// [lo, hi]: lo and below map to 0, hi and above map to 1. This implements
// the paper's "logarithmic normalization ... to further smoothen I values".
func LogNormalize(v, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		return 0
	}
	if v <= lo {
		return 0
	}
	if v >= hi {
		return 1
	}
	return math.Log(v/lo) / math.Log(hi/lo)
}

// Median returns the median of xs, or 0 for an empty slice. The input is
// not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Normalize divides each value by the maximum, producing values in (0,1].
// A zero or negative maximum returns a copy of the input unchanged.
func Normalize(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	if len(out) == 0 {
		return out
	}
	m := Max(out)
	if m <= 0 {
		return out
	}
	for i := range out {
		out[i] /= m
	}
	return out
}
