package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
		err  bool
	}{
		{name: "single", in: []float64{4}, want: 4},
		{name: "pair", in: []float64{1, 4}, want: 2},
		{name: "triple", in: []float64{1, 10, 100}, want: 10},
		{name: "identical", in: []float64{7, 7, 7}, want: 7},
		{name: "empty", in: nil, err: true},
		{name: "zero", in: []float64{1, 0}, err: true},
		{name: "negative", in: []float64{1, -2}, err: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Geomean(tc.in)
			if tc.err {
				if err == nil {
					t.Fatalf("want error, got %v", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("got %v want %v", got, tc.want)
			}
		})
	}
}

func TestMustGeomeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty input")
		}
	}()
	MustGeomean(nil)
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := MustGeomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean=%v want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("variance=%v want 4", got)
	}
	if got := Stddev(xs); got != 2 {
		t.Fatalf("stddev=%v want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("mean(nil)=%v want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("variance single=%v want 0", got)
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Min(xs); got != 1 {
		t.Fatalf("min=%v", got)
	}
	if got := Max(xs); got != 5 {
		t.Fatalf("max=%v", got)
	}
	if got := ArgMin(xs); got != 1 {
		t.Fatalf("argmin=%v want 1 (earliest tie)", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Fatalf("argmax=%v", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Fatalf("argmin(nil)=%v", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("argmax(nil)=%v", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Fatalf("clamp high: %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Fatalf("clamp low: %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Fatalf("clamp mid: %v", got)
	}
	if got := ClampInt(10, 1, 4); got != 4 {
		t.Fatalf("clampint: %v", got)
	}
	if got := ClampInt(-1, 1, 4); got != 1 {
		t.Fatalf("clampint low: %v", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(x, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretize(t *testing.T) {
	tests := []struct {
		in, step, want float64
	}{
		{0.44, 0.1, 0.4},
		{0.45, 0.1, 0.5},
		{0.96, 0.1, 1.0},
		{-0.3, 0.1, 0},
		{1.7, 0.1, 1},
		{0.33, 0, 0.33},     // non-positive step: clamp only
		{0.125, 0.25, 0.25}, // alternate step width (round half up)
	}
	for _, tc := range tests {
		if got := Discretize(tc.in, tc.step); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Discretize(%v,%v)=%v want %v", tc.in, tc.step, got, tc.want)
		}
	}
}

func TestDiscretizeSnapsToMultiples(t *testing.T) {
	f := func(x float64) bool {
		got := Discretize(x, 0.1)
		scaled := got * 10
		return math.Abs(scaled-math.Round(scaled)) < 1e-9 && got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalize(t *testing.T) {
	if got := LogNormalize(10, 10, 1000); got != 0 {
		t.Fatalf("at lo: %v", got)
	}
	if got := LogNormalize(1000, 10, 1000); got != 1 {
		t.Fatalf("at hi: %v", got)
	}
	if got := LogNormalize(100, 10, 1000); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("logarithmic midpoint: %v want 0.5", got)
	}
	if got := LogNormalize(5, 10, 1000); got != 0 {
		t.Fatalf("below lo: %v", got)
	}
	if got := LogNormalize(1e9, 10, 1000); got != 1 {
		t.Fatalf("above hi: %v", got)
	}
	// Degenerate anchors.
	if got := LogNormalize(5, 0, 10); got != 0 {
		t.Fatalf("lo<=0: %v", got)
	}
	if got := LogNormalize(5, 10, 10); got != 0 {
		t.Fatalf("hi<=lo: %v", got)
	}
}

func TestLogNormalizeMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Abs(a)+1, math.Abs(b)+1
		if x > y {
			x, y = y, x
		}
		return LogNormalize(x, 1, 1e12) <= LogNormalize(y, 1, 1e12)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median: %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median: %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("empty median: %v", got)
	}
	// Input must not be modified.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("median modified its input")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 2, 4})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("normalize[%d]=%v want %v", i, out[i], want[i])
		}
	}
	// Zero max leaves values untouched.
	same := Normalize([]float64{0, 0})
	if same[0] != 0 || same[1] != 0 {
		t.Fatal("zero-max should be identity")
	}
	if got := Normalize(nil); len(got) != 0 {
		t.Fatal("empty input should stay empty")
	}
}
