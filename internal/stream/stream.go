// Package stream implements Stinger-style chunked processing of graphs
// that exceed an accelerator's attached memory (paper Section II: "chunks
// from larger graphs are extracted temporally using a state-of-the-art
// Stinger framework, and streamed in the accelerator's memory").
//
// A chunk is a contiguous vertex range together with all of its outgoing
// edges; destination vertices outside the range are retained as ghost
// references, so per-chunk kernels see a consistent CSR slice. The
// machine model charges a streaming penalty per extra chunk; this package
// provides the actual extraction used by the streaming example and the
// Fig 16 memory-sensitivity experiment.
package stream

import (
	"fmt"

	"heteromap/internal/graph"
)

// Chunk is one memory-sized slice of a larger graph.
type Chunk struct {
	// Index is the chunk's position in the stream.
	Index int
	// FirstVertex and LastVertex bound the owned vertex range
	// [FirstVertex, LastVertex).
	FirstVertex, LastVertex int
	// Graph holds the owned vertices' adjacency. Vertex ids are global:
	// the chunk graph has the full vertex count but only the owned
	// range's edges, so kernels can index destination state directly.
	Graph *graph.Graph
}

// String implements fmt.Stringer.
func (c *Chunk) String() string {
	return fmt.Sprintf("chunk %d: vertices [%d,%d) edges=%d",
		c.Index, c.FirstVertex, c.LastVertex, c.Graph.NumEdges())
}

// CountChunks returns how many chunks a dataset footprint needs on an
// accelerator with the given memory size. Footprints that fit take one
// chunk; a non-positive memory size is treated as "fits".
func CountChunks(footprintBytes, memBytes int64) int {
	if footprintBytes <= 0 || memBytes <= 0 || footprintBytes <= memBytes {
		return 1
	}
	return int((footprintBytes + memBytes - 1) / memBytes)
}

// Partition splits g into n chunks of approximately equal edge count.
// n < 1 is treated as 1; n greater than the vertex count is clamped.
func Partition(g *graph.Graph, n int) []*Chunk {
	v := g.NumVertices()
	if n < 1 {
		n = 1
	}
	if n > v && v > 0 {
		n = v
	}
	if v == 0 {
		return []*Chunk{{Index: 0, Graph: g}}
	}

	totalEdges := g.NumEdges()
	targetPerChunk := totalEdges / int64(n)
	chunks := make([]*Chunk, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		end := start
		var acc int64
		for end < v && (acc < targetPerChunk || i == n-1) {
			acc += int64(g.Degree(end))
			end++
			if i < n-1 && v-end <= n-1-i { // leave at least one vertex per remaining chunk
				break
			}
		}
		if end == start && start < v {
			end = start + 1
		}
		chunks = append(chunks, buildChunk(g, i, start, end))
		start = end
		if start >= v {
			break
		}
	}
	// If vertices remain (rounding), extend the last chunk.
	if start < v {
		last := chunks[len(chunks)-1]
		chunks[len(chunks)-1] = buildChunk(g, last.Index, last.FirstVertex, v)
	}
	return chunks
}

// PartitionForMemory splits g into however many chunks its footprint
// needs to fit in memBytes.
func PartitionForMemory(g *graph.Graph, memBytes int64) []*Chunk {
	return Partition(g, CountChunks(g.FootprintBytes(), memBytes))
}

func buildChunk(g *graph.Graph, index, first, last int) *Chunk {
	v := g.NumVertices()
	offsets := make([]int64, v+1)
	var edgeCount int64
	for u := first; u < last; u++ {
		edgeCount += int64(g.Degree(u))
	}
	edges := make([]int32, 0, edgeCount)
	var weights []float32
	if g.Weighted() {
		weights = make([]float32, 0, edgeCount)
	}
	for u := 0; u < v; u++ {
		if u >= first && u < last {
			edges = append(edges, g.Neighbors(u)...)
			if weights != nil {
				weights = append(weights, g.NeighborWeights(u)...)
			}
		}
		offsets[u+1] = int64(len(edges))
	}
	return &Chunk{
		Index:       index,
		FirstVertex: first,
		LastVertex:  last,
		Graph: &graph.Graph{
			Name:       fmt.Sprintf("%s#%d", g.Name, index),
			Offsets:    offsets,
			Edges:      edges,
			Weights:    weights,
			Undirected: false, // a chunk holds only the owned directions
		},
	}
}

// Reassemble merges chunks back into a single graph; it is the inverse of
// Partition and exists so tests can verify the decomposition is lossless.
func Reassemble(name string, chunks []*Chunk) (*graph.Graph, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("stream: no chunks")
	}
	v := chunks[0].Graph.NumVertices()
	weighted := chunks[0].Graph.Weighted()
	offsets := make([]int64, v+1)
	var edges []int32
	var weights []float32
	for u := 0; u < v; u++ {
		for _, c := range chunks {
			if u >= c.FirstVertex && u < c.LastVertex {
				edges = append(edges, c.Graph.Neighbors(u)...)
				if weighted {
					weights = append(weights, c.Graph.NeighborWeights(u)...)
				}
			}
		}
		offsets[u+1] = int64(len(edges))
	}
	g := &graph.Graph{Name: name, Offsets: offsets, Edges: edges, Weights: weights}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
