package stream

import (
	"testing"
	"testing/quick"

	"heteromap/internal/gen"
	"heteromap/internal/graph"
)

func TestCountChunks(t *testing.T) {
	tests := []struct {
		footprint, mem int64
		want           int
	}{
		{0, 100, 1},
		{50, 100, 1},
		{100, 100, 1},
		{101, 100, 2},
		{1000, 100, 10},
		{1001, 100, 11},
		{100, 0, 1},   // no memory limit
		{100, -5, 1},  // degenerate
		{-10, 100, 1}, // degenerate footprint
	}
	for _, tc := range tests {
		if got := CountChunks(tc.footprint, tc.mem); got != tc.want {
			t.Errorf("CountChunks(%d,%d)=%d want %d", tc.footprint, tc.mem, got, tc.want)
		}
	}
}

func TestPartitionCoversAllEdgesOnce(t *testing.T) {
	g := gen.Uniform("u", 200, 2000, 16, 3)
	for _, n := range []int{1, 2, 3, 7, 50} {
		chunks := Partition(g, n)
		var total int64
		covered := make([]bool, g.NumVertices())
		for _, c := range chunks {
			total += c.Graph.NumEdges()
			for v := c.FirstVertex; v < c.LastVertex; v++ {
				if covered[v] {
					t.Fatalf("n=%d: vertex %d owned twice", n, v)
				}
				covered[v] = true
				if c.Graph.Degree(v) != g.Degree(v) {
					t.Fatalf("n=%d: vertex %d degree %d want %d",
						n, v, c.Graph.Degree(v), g.Degree(v))
				}
			}
		}
		if total != g.NumEdges() {
			t.Fatalf("n=%d: chunks hold %d edges, graph has %d", n, total, g.NumEdges())
		}
		for v, ok := range covered {
			if !ok {
				t.Fatalf("n=%d: vertex %d unowned", n, v)
			}
		}
	}
}

func TestPartitionChunkRangesContiguous(t *testing.T) {
	g := gen.Uniform("u", 300, 3000, 0, 5)
	chunks := Partition(g, 5)
	prev := 0
	for i, c := range chunks {
		if c.FirstVertex != prev {
			t.Fatalf("chunk %d starts at %d want %d", i, c.FirstVertex, prev)
		}
		if c.LastVertex < c.FirstVertex {
			t.Fatalf("chunk %d inverted range", i)
		}
		prev = c.LastVertex
	}
	if prev != g.NumVertices() {
		t.Fatalf("chunks end at %d want %d", prev, g.NumVertices())
	}
}

func TestPartitionBalancesEdges(t *testing.T) {
	g := gen.Uniform("u", 1000, 20000, 0, 7)
	chunks := Partition(g, 4)
	if len(chunks) != 4 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	target := g.NumEdges() / 4
	for i, c := range chunks {
		e := c.Graph.NumEdges()
		if e < target/3 || e > target*3 {
			t.Errorf("chunk %d badly balanced: %d edges, target %d", i, e, target)
		}
	}
}

func TestPartitionWeightsPreserved(t *testing.T) {
	g := gen.Uniform("u", 100, 800, 32, 9)
	chunks := Partition(g, 3)
	for _, c := range chunks {
		if !c.Graph.Weighted() {
			t.Fatal("weights lost in chunking")
		}
		for v := c.FirstVertex; v < c.LastVertex; v++ {
			ws := c.Graph.NeighborWeights(v)
			want := g.NeighborWeights(v)
			for i := range want {
				if ws[i] != want[i] {
					t.Fatalf("vertex %d weight %d mismatch", v, i)
				}
			}
		}
	}
}

func TestPartitionDegenerate(t *testing.T) {
	g := gen.Uniform("u", 10, 30, 0, 1)
	if got := Partition(g, 0); len(got) != 1 {
		t.Fatalf("n=0 -> %d chunks", len(got))
	}
	if got := Partition(g, 100); len(got) > 10 {
		t.Fatalf("n>V -> %d chunks", len(got))
	}
	empty := graph.NewBuilder("e", 0).MustBuild()
	if got := Partition(empty, 3); len(got) != 1 {
		t.Fatalf("empty graph -> %d chunks", len(got))
	}
}

func TestPartitionForMemory(t *testing.T) {
	g := gen.Uniform("u", 500, 5000, 16, 11)
	half := g.FootprintBytes() / 2
	chunks := PartitionForMemory(g, half)
	if len(chunks) < 2 {
		t.Fatalf("half-memory graph needs >= 2 chunks, got %d", len(chunks))
	}
	whole := PartitionForMemory(g, g.FootprintBytes()*2)
	if len(whole) != 1 {
		t.Fatalf("fitting graph chunks = %d", len(whole))
	}
}

func TestReassembleInvertsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.Uniform("u", 80, 600, 8, seed)
		chunks := Partition(g, 4)
		back, err := Reassemble(g.Name, chunks)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Neighbors(v), back.Neighbors(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCountChunksExactBoundary(t *testing.T) {
	// Exact multiples of the memory size must not round an extra chunk
	// in (or out): the off-by-one here silently inflates the streaming
	// penalty in the machine model.
	const mem = int64(1) << 31 // 2 GB, the GTX-750Ti's memory
	tests := []struct {
		footprint int64
		want      int
	}{
		{mem, 1},         // exactly fits
		{mem + 1, 2},     // one byte over
		{2 * mem, 2},     // exact double
		{2*mem + 1, 3},   // just past double
		{10 * mem, 10},   // exact 10x
		{10*mem - 1, 10}, // just under 10x
	}
	for _, tc := range tests {
		if got := CountChunks(tc.footprint, mem); got != tc.want {
			t.Errorf("CountChunks(%d, %d) = %d want %d", tc.footprint, mem, got, tc.want)
		}
	}
}

func TestPartitionPreservesWeightedFlag(t *testing.T) {
	weighted := gen.Uniform("w", 60, 300, 16, 5)
	if !weighted.Weighted() {
		t.Fatal("setup: generator dropped weights")
	}
	for _, c := range Partition(weighted, 4) {
		if !c.Graph.Weighted() {
			t.Fatalf("chunk %d lost the Weighted flag", c.Index)
		}
	}
	plain := gen.Uniform("p", 60, 300, 0, 5)
	if plain.Weighted() {
		t.Fatal("setup: unweighted generator produced weights")
	}
	for _, c := range Partition(plain, 4) {
		if c.Graph.Weighted() {
			t.Fatalf("chunk %d invented weights", c.Index)
		}
	}
}

func TestReassembleRoundTripsWeights(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.Uniform("w", 70, 500, 24, seed)
		back, err := Reassemble(g.Name, Partition(g, 5))
		if err != nil || !back.Weighted() {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.NeighborWeights(v), back.NeighborWeights(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestReassembleEmpty(t *testing.T) {
	if _, err := Reassemble("x", nil); err == nil {
		t.Fatal("expected error for empty chunk list")
	}
}

func TestChunkString(t *testing.T) {
	g := gen.Uniform("u", 20, 60, 0, 1)
	c := Partition(g, 2)[0]
	if c.String() == "" {
		t.Fatal("empty chunk string")
	}
}
