package train

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/tune"
)

// Objective selects what the offline search (and thus the trained
// learners) optimize — the paper trains HeteroMap "also ... for the
// energy objective".
type Objective int

const (
	// Performance minimizes completion time.
	Performance Objective = iota
	// Energy minimizes energy.
	Energy
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	if o == Energy {
		return "energy"
	}
	return "performance"
}

// Config sizes the offline training run.
type Config struct {
	// Samples is the number of synthetic benchmark-input combinations.
	Samples int
	// Seed fixes combination sampling.
	Seed int64
	// Objective selects time or energy minimization.
	Objective Objective
	// Workers bounds parallel tuning (default GOMAXPROCS).
	Workers int
}

// FastConfig returns a configuration sized for unit tests.
func FastConfig() Config { return Config{Samples: 300, Seed: 42} }

// DefaultConfig returns the configuration used by the experiment harness:
// large enough for the Table IV learner ordering to be stable, small
// enough to rebuild in seconds. (The paper generates millions of samples
// over hours of accelerator time; the simulator makes sampling cheap but
// the learners converge long before that.)
func DefaultConfig() Config { return Config{Samples: 3000, Seed: 42} }

// DB is the offline profiler database of Section V: (B, I) tuples mapped
// to their best-performing M vectors on one accelerator pair.
type DB struct {
	Pair      machine.Pair
	Limits    config.Limits
	Objective Objective
	Samples   []predict.Sample
}

// Metric evaluates one M configuration for a job on the pair under an
// objective.
func Metric(pair machine.Pair, objective Objective, job machine.Job, m config.M) float64 {
	rep := pair.Select(m.Accelerator).Evaluate(job, m)
	if objective == Energy {
		return rep.EnergyJ
	}
	return rep.Seconds
}

// BuildDatabase generates cfg.Samples synthetic combinations, finds each
// one's best M over the coarse sweep grid (grid search matches what the
// learners can usefully absorb; tune.Ensemble refines further when the
// caller needs the ideal reference), and returns the training database.
//
// The result is a pure function of (pair, cfg): each sample's RNG is
// seeded from its index, so cfg.Workers changes only how fast the
// database builds, never its contents. Tests pin this contract.
func BuildDatabase(pair machine.Pair, cfg Config) *DB {
	if cfg.Samples <= 0 {
		cfg.Samples = DefaultConfig().Samples
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	limits := pair.Limits()
	candidates := config.Enumerate(limits)

	db := &DB{Pair: pair, Limits: limits, Objective: cfg.Objective}
	db.Samples = make([]predict.Sample, cfg.Samples)

	var wg sync.WaitGroup
	var next int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= cfg.Samples {
					return
				}
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
				combo := Synthesize(RandomB(rng), RandomI(rng), rng)
				job := machine.Job{Work: combo.Work, FootprintBytes: combo.Footprint}
				best := tune.ExhaustiveSerial(candidates, func(m config.M) float64 {
					return Metric(pair, cfg.Objective, job, m)
				})
				db.Samples[i] = predict.Sample{
					Features: combo.Features,
					Target:   best.Best.Normalize(limits),
				}
			}
		}(w)
	}
	wg.Wait()
	return db
}

// Split partitions the database into train and holdout sets (holdoutFrac
// of the samples, at least one when possible).
func (db *DB) Split(holdoutFrac float64, seed int64) (train, holdout []predict.Sample) {
	n := len(db.Samples)
	if n == 0 {
		return nil, nil
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	h := int(float64(n) * holdoutFrac)
	if h < 1 && n > 1 {
		h = 1
	}
	holdout = make([]predict.Sample, 0, h)
	train = make([]predict.Sample, 0, n-h)
	for i, j := range idx {
		if i < h {
			holdout = append(holdout, db.Samples[j])
		} else {
			train = append(train, db.Samples[j])
		}
	}
	return train, holdout
}

// TrainAll fits every trainable predictor on the database, returning the
// first error.
func (db *DB) TrainAll(preds ...predict.Trainable) error {
	for _, p := range preds {
		if err := p.Train(db.Samples); err != nil {
			return fmt.Errorf("train %s: %w", p.Name(), err)
		}
	}
	return nil
}
