package train

import (
	"runtime"
	"testing"

	"heteromap/internal/machine"
)

// BuildDatabase derives each sample's RNG from the sample index, never
// from the worker that happens to claim it — so the database is a pure
// function of (pair, Config) regardless of parallelism. The conformance
// suite leans on this (one shared database serves every learner), and
// so does anyone comparing training runs across machines.
func TestBuildDatabaseWorkerCountInvariant(t *testing.T) {
	pair := machine.PrimaryPair()
	cfg := Config{Samples: 48, Seed: 7}

	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref *DB
	for _, workers := range counts {
		c := cfg
		c.Workers = workers
		db := BuildDatabase(pair, c)
		if len(db.Samples) != cfg.Samples {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(db.Samples), cfg.Samples)
		}
		if ref == nil {
			ref = db
			continue
		}
		for i := range db.Samples {
			if db.Samples[i] != ref.Samples[i] {
				t.Fatalf("workers=%d: sample %d differs from workers=%d:\n%+v\nvs\n%+v",
					workers, i, counts[0], db.Samples[i], ref.Samples[i])
			}
		}
	}
}

// Different seeds must actually produce different databases — the
// invariance above would be trivially true of a constant function.
func TestBuildDatabaseSeedSensitivity(t *testing.T) {
	pair := machine.PrimaryPair()
	a := BuildDatabase(pair, Config{Samples: 8, Seed: 1, Workers: 2})
	b := BuildDatabase(pair, Config{Samples: 8, Seed: 2, Workers: 2})
	for i := range a.Samples {
		if a.Samples[i].Features != b.Samples[i].Features {
			return
		}
	}
	t.Fatal("seeds 1 and 2 generated identical feature streams")
}
