package train

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
)

// This file implements the paper's profiler database persistence: "This
// creates a profiler database of B,I,M tuples residing in the CPU file
// system, which is indexed using B,I tuples to get M solutions." The
// binary format stores the pair identity, objective and all samples;
// Lookup answers queries by nearest characterization.

const storeMagic = "HMDB"

// Save serializes the database.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return err
	}
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	pairName := db.Pair.Name()
	if err := write(uint32(len(pairName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(pairName); err != nil {
		return err
	}
	if err := write(uint32(db.Objective)); err != nil {
		return err
	}
	if err := write(uint64(len(db.Samples))); err != nil {
		return err
	}
	for i := range db.Samples {
		s := &db.Samples[i]
		for _, f := range s.Features {
			if err := write(f); err != nil {
				return err
			}
		}
		for _, t := range s.Target {
			if err := write(t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveFile writes the database to path atomically: the bytes go to a
// temporary file in the same directory (same filesystem, so the final
// rename cannot degrade into a copy), are fsynced, and only then replace
// path in one rename. A crash at any point leaves either the previous
// database or no file at all — never a torn prefix under the real name.
// LoadDB independently rejects truncated input, so even a torn temp file
// can never be mistaken for a database.
func (db *DB) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".hmdb-*")
	if err != nil {
		return fmt.Errorf("train: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = db.Save(tmp); err != nil {
		return fmt.Errorf("train: save %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("train: save %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("train: save %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("train: save %s: %w", path, err)
	}
	return nil
}

// LoadDBFile opens and deserializes a database written by SaveFile (or
// any writer of the Save format).
func LoadDBFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("train: load %s: %w", path, err)
	}
	defer f.Close()
	return LoadDB(f)
}

// LoadDB deserializes a database saved by Save. The accelerator pair is
// re-resolved by name against the built-in catalog so the cost-model
// coefficients always come from the running binary, not the file.
func LoadDB(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("train: reading magic: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("train: bad magic %q", magic)
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var nameLen uint32
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<12 {
		return nil, fmt.Errorf("train: implausible pair-name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	pair, err := pairByName(string(nameBytes))
	if err != nil {
		return nil, err
	}
	var objective uint32
	if err := read(&objective); err != nil {
		return nil, err
	}
	var count uint64
	if err := read(&count); err != nil {
		return nil, err
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("train: implausible sample count %d", count)
	}
	db := &DB{
		Pair:      pair,
		Limits:    pair.Limits(),
		Objective: Objective(objective),
		Samples:   make([]predict.Sample, count),
	}
	for i := range db.Samples {
		s := &db.Samples[i]
		for j := range s.Features {
			if err := read(&s.Features[j]); err != nil {
				return nil, err
			}
		}
		for j := range s.Target {
			if err := read(&s.Target[j]); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// pairByName resolves a saved pair identity against the Table II catalog.
func pairByName(name string) (machine.Pair, error) {
	for _, p := range machine.AllPairs() {
		if p.Name() == name {
			return p, nil
		}
	}
	return machine.Pair{}, fmt.Errorf("train: unknown accelerator pair %q", name)
}

// Lookup returns the stored M solution of the sample whose
// characterization is closest (squared Euclidean distance over the 17
// features) to f, with the distance. ok is false for an empty database.
func (db *DB) Lookup(f feature.Vector) (m config.M, dist float64, ok bool) {
	best := -1
	bestDist := 0.0
	for i := range db.Samples {
		d := 0.0
		for j := range f {
			diff := f[j] - db.Samples[i].Features[j]
			d += diff * diff
		}
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return config.M{}, 0, false
	}
	return config.FromNormalized(db.Samples[best].Target, db.Limits), bestDist, true
}

// LookupPredictor wraps the profiler database as a predictor: the
// paper's pre-learning configuration path ("indexed using B,I tuples to
// get M solutions"). It needs no training beyond the database itself and
// serves as the non-parametric reference the learned models must beat in
// generalization.
type LookupPredictor struct {
	db *DB
}

// NewLookupPredictor wraps a database.
func NewLookupPredictor(db *DB) *LookupPredictor { return &LookupPredictor{db: db} }

// Name implements predict.Predictor.
func (l *LookupPredictor) Name() string { return "DB Lookup" }

// Predict implements predict.Predictor.
func (l *LookupPredictor) Predict(f feature.Vector) config.M {
	m, _, ok := l.db.Lookup(f)
	if !ok {
		return config.DefaultGPU(l.db.Limits)
	}
	return m
}
