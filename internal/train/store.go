package train

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"heteromap/internal/config"
	"heteromap/internal/durable"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
)

// This file implements the paper's profiler database persistence: "This
// creates a profiler database of B,I,M tuples residing in the CPU file
// system, which is indexed using B,I tuples to get M solutions." The
// binary format stores the pair identity, objective and all samples;
// Lookup answers queries by nearest characterization.
//
// Two on-disk generations exist:
//
//	HMDB (legacy)  header | raw samples — no integrity protection.
//	HMD2 (current) header | per-sample record + CRC32-C | sealed footer
//
//	"HMD2" | u32 nameLen | name | u32 objective | u64 count
//	sample: 17 f64 features | 20 f64 target | u32 auxLen | aux
//	        | u32 crc32c(record)
//	footer: u32 crc32c(magic..last record) | u64 count | "HMDE"
//
// Save writes HMD2; LoadDB dispatches on the magic so legacy databases
// stay readable (parse-checked only — they carry no checksums to
// verify). Every HMD2 load verifies per-record and whole-file checksums
// before a byte is believed: a torn or bit-rotted database fails with
// ErrCorrupt and is quarantined by its consumer, never parse-and-prayed
// into serving. The optional per-sample aux blob carries consumer
// private data (the online layer stores full feedback outcomes there);
// LoadDB ignores it, so a window snapshot is still a valid database to
// every existing reader.
const (
	storeMagic    = "HMDB" // legacy, unchecksummed
	storeMagicV2  = "HMD2"
	storeEndMagic = "HMDE"
)

// ErrCorrupt marks a database that failed integrity verification:
// checksum mismatch, truncation, or a missing seal. Callers quarantine
// the file and keep serving the predecessor.
var ErrCorrupt = errors.New("train: database failed integrity verification")

var storeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// storeCRCWriter accumulates the whole-file CRC over everything written
// through it.
type storeCRCWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *storeCRCWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, storeCRCTable, p[:n])
	return n, err
}

// storeCRCReader accumulates the same running CRC the writer computed.
type storeCRCReader struct {
	r   io.Reader
	crc uint32
}

func (cr *storeCRCReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, storeCRCTable, p[:n])
	return n, err
}

// Save serializes the database in the checksummed HMD2 format.
func (db *DB) Save(w io.Writer) error {
	return db.SaveAux(w, nil)
}

// SaveAux serializes the database with one optional aux blob per sample
// (aux may be nil, or shorter than the sample count; missing entries
// write as empty). Aux rides inside the per-sample checksummed record,
// so it shares the format's integrity guarantees.
func (db *DB) SaveAux(w io.Writer, aux [][]byte) error {
	bw := bufio.NewWriter(w)
	cw := &storeCRCWriter{w: bw}
	le := binary.LittleEndian
	if _, err := io.WriteString(cw, storeMagicV2); err != nil {
		return err
	}
	var scratch [12]byte
	pairName := db.Pair.Name()
	le.PutUint32(scratch[0:4], uint32(len(pairName)))
	if _, err := cw.Write(scratch[:4]); err != nil {
		return err
	}
	if _, err := io.WriteString(cw, pairName); err != nil {
		return err
	}
	le.PutUint32(scratch[0:4], uint32(db.Objective))
	le.PutUint64(scratch[4:12], uint64(len(db.Samples)))
	if _, err := cw.Write(scratch[:12]); err != nil {
		return err
	}
	rec := make([]byte, 0, sampleRecordBase)
	for i := range db.Samples {
		s := &db.Samples[i]
		var a []byte
		if i < len(aux) {
			a = aux[i]
		}
		rec = appendSampleRecord(rec[:0], s, a)
		if _, err := cw.Write(rec); err != nil {
			return err
		}
		le.PutUint32(scratch[0:4], crc32.Checksum(rec, storeCRCTable))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
	}
	// Seal: whole-file CRC through the last record, the count again, and
	// the end magic. The seal itself sits outside the running CRC.
	le.PutUint32(scratch[0:4], cw.crc)
	le.PutUint64(scratch[4:12], uint64(len(db.Samples)))
	if _, err := bw.Write(scratch[:12]); err != nil {
		return err
	}
	if _, err := bw.WriteString(storeEndMagic); err != nil {
		return err
	}
	return bw.Flush()
}

// sampleRecordBase is a sample record's size before its aux blob: the
// features, the target, and the aux length prefix.
const sampleRecordBase = len(feature.Vector{})*8 + len(predict.Sample{}.Target)*8 + 4

// appendSampleRecord appends one sample's record bytes (sans CRC).
func appendSampleRecord(rec []byte, s *predict.Sample, aux []byte) []byte {
	le := binary.LittleEndian
	var b [8]byte
	for _, f := range s.Features {
		le.PutUint64(b[:], math.Float64bits(f))
		rec = append(rec, b[:]...)
	}
	for _, t := range s.Target {
		le.PutUint64(b[:], math.Float64bits(t))
		rec = append(rec, b[:]...)
	}
	le.PutUint32(b[:4], uint32(len(aux)))
	rec = append(rec, b[:4]...)
	rec = append(rec, aux...)
	return rec
}

// SaveFile writes the database to path atomically (write-temp + fsync +
// rename): a crash at any point leaves either the previous database or
// no file at all — never a torn prefix under the real name. LoadDB
// independently rejects torn input, so even a stray temp file can never
// be mistaken for a database.
func (db *DB) SaveFile(path string) error {
	return db.SaveFileAux(path, nil, nil)
}

// SaveFileAux is SaveFile with per-sample aux blobs and the
// crash-injection seam: kill (nil in production) can die the write at a
// deterministic byte offset under the "store" target, leaving exactly
// the torn temp a real kill -9 would.
func (db *DB) SaveFileAux(path string, aux [][]byte, kill durable.KillFunc) error {
	err := durable.WriteFileAtomic(path, "store", kill, func(w io.Writer) error {
		return db.SaveAux(w, aux)
	})
	if err != nil {
		return fmt.Errorf("train: save %s: %w", path, err)
	}
	return nil
}

// LoadDBFile opens and deserializes a database written by SaveFile (or
// any writer of the Save format).
func LoadDBFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("train: load %s: %w", path, err)
	}
	defer f.Close()
	return LoadDB(f)
}

// VerifyFile fully loads and checksum-verifies a database file without
// keeping it: the recovery ladder's artifact check. A nil error means
// every record parsed and (for HMD2) every checksum held; ErrCorrupt
// (wrapped) means the artifact must be quarantined.
func VerifyFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("train: verify %s: %w", path, err)
	}
	defer f.Close()
	if _, _, err := loadDBAux(f); err != nil {
		return fmt.Errorf("train: verify %s: %w", path, err)
	}
	return nil
}

// LoadDB deserializes a database saved by Save (either generation). The
// accelerator pair is re-resolved by name against the built-in catalog
// so the cost-model coefficients always come from the running binary,
// not the file.
func LoadDB(r io.Reader) (*DB, error) {
	db, _, err := loadDBAux(r)
	return db, err
}

// LoadDBAux is LoadDB returning the per-sample aux blobs too (nil for
// legacy databases, and nil entries for samples written without aux).
func LoadDBAux(r io.Reader) (*DB, [][]byte, error) {
	return loadDBAux(r)
}

// LoadDBAuxFile is LoadDBAux over a file.
func LoadDBAuxFile(path string) (*DB, [][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("train: load %s: %w", path, err)
	}
	defer f.Close()
	return loadDBAux(f)
}

func loadDBAux(r io.Reader) (*DB, [][]byte, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("train: reading magic: %w", err)
	}
	switch string(magic) {
	case storeMagic:
		db, err := loadLegacy(br)
		return db, nil, err
	case storeMagicV2:
		return loadV2(br)
	}
	return nil, nil, fmt.Errorf("train: bad magic %q", magic)
}

// loadV2 reads the checksummed format. Integrity failures wrap
// ErrCorrupt; format/catalog failures (unknown pair, implausible sizes)
// stay plain errors.
func loadV2(br *bufio.Reader) (*DB, [][]byte, error) {
	cr := &storeCRCReader{r: br}
	// The magic was consumed before dispatch; fold it back into the
	// running CRC so the seal covers the whole file.
	cr.crc = crc32.Update(0, storeCRCTable, []byte(storeMagicV2))
	le := binary.LittleEndian
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
	var scratch [16]byte
	if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
		return nil, nil, corrupt("truncated header: %v", err)
	}
	nameLen := le.Uint32(scratch[:4])
	if nameLen > 1<<12 {
		return nil, nil, fmt.Errorf("train: implausible pair-name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, nameBytes); err != nil {
		return nil, nil, corrupt("truncated header: %v", err)
	}
	pair, err := pairByName(string(nameBytes))
	if err != nil {
		return nil, nil, err
	}
	if _, err := io.ReadFull(cr, scratch[:12]); err != nil {
		return nil, nil, corrupt("truncated header: %v", err)
	}
	objective := le.Uint32(scratch[0:4])
	count := le.Uint64(scratch[4:12])
	if count > 1<<24 {
		return nil, nil, fmt.Errorf("train: implausible sample count %d", count)
	}
	db := &DB{
		Pair:      pair,
		Limits:    pair.Limits(),
		Objective: Objective(objective),
		Samples:   make([]predict.Sample, count),
	}
	var aux [][]byte
	rec := make([]byte, sampleRecordBase)
	for i := range db.Samples {
		if _, err := io.ReadFull(cr, rec[:sampleRecordBase]); err != nil {
			return nil, nil, corrupt("truncated at sample %d: %v", i, err)
		}
		auxLen := le.Uint32(rec[sampleRecordBase-4 : sampleRecordBase])
		if auxLen > 1<<20 {
			return nil, nil, corrupt("sample %d: implausible aux length %d", i, auxLen)
		}
		recCRC := crc32.Checksum(rec[:sampleRecordBase], storeCRCTable)
		var auxBytes []byte
		if auxLen > 0 {
			auxBytes = make([]byte, auxLen)
			if _, err := io.ReadFull(cr, auxBytes); err != nil {
				return nil, nil, corrupt("truncated at sample %d aux: %v", i, err)
			}
			recCRC = crc32.Update(recCRC, storeCRCTable, auxBytes)
		}
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return nil, nil, corrupt("truncated at sample %d checksum: %v", i, err)
		}
		if le.Uint32(scratch[:4]) != recCRC {
			return nil, nil, corrupt("sample %d checksum mismatch", i)
		}
		s := &db.Samples[i]
		off := 0
		for j := range s.Features {
			s.Features[j] = math.Float64frombits(le.Uint64(rec[off : off+8]))
			off += 8
		}
		for j := range s.Target {
			s.Target[j] = math.Float64frombits(le.Uint64(rec[off : off+8]))
			off += 8
		}
		if auxBytes != nil {
			if aux == nil {
				aux = make([][]byte, count)
			}
			aux[i] = auxBytes
		}
	}
	sealed := cr.crc
	// Footer sits outside the running CRC: seal, count echo, end magic.
	if _, err := io.ReadFull(br, scratch[:16]); err != nil {
		return nil, nil, corrupt("unsealed: missing footer: %v", err)
	}
	if le.Uint32(scratch[0:4]) != sealed {
		return nil, nil, corrupt("file checksum mismatch")
	}
	if le.Uint64(scratch[4:12]) != count {
		return nil, nil, corrupt("footer count mismatch")
	}
	if string(scratch[12:16]) != storeEndMagic {
		return nil, nil, corrupt("bad end magic %q", scratch[12:16])
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, nil, corrupt("trailing bytes after seal")
	}
	return db, aux, nil
}

// loadLegacy reads the pre-checksum HMDB format (compat path): parse
// checks only, since the generation carries nothing to verify.
func loadLegacy(br *bufio.Reader) (*DB, error) {
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var nameLen uint32
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<12 {
		return nil, fmt.Errorf("train: implausible pair-name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	pair, err := pairByName(string(nameBytes))
	if err != nil {
		return nil, err
	}
	var objective uint32
	if err := read(&objective); err != nil {
		return nil, err
	}
	var count uint64
	if err := read(&count); err != nil {
		return nil, err
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("train: implausible sample count %d", count)
	}
	db := &DB{
		Pair:      pair,
		Limits:    pair.Limits(),
		Objective: Objective(objective),
		Samples:   make([]predict.Sample, count),
	}
	for i := range db.Samples {
		s := &db.Samples[i]
		for j := range s.Features {
			if err := read(&s.Features[j]); err != nil {
				return nil, err
			}
		}
		for j := range s.Target {
			if err := read(&s.Target[j]); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// SaveLegacy writes the pre-checksum HMDB generation — kept so the
// compat tests and the load-overhead benchmark can produce authentic
// legacy files. New databases must use Save.
func (db *DB) SaveLegacy(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return err
	}
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	pairName := db.Pair.Name()
	if err := write(uint32(len(pairName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(pairName); err != nil {
		return err
	}
	if err := write(uint32(db.Objective)); err != nil {
		return err
	}
	if err := write(uint64(len(db.Samples))); err != nil {
		return err
	}
	for i := range db.Samples {
		s := &db.Samples[i]
		for _, f := range s.Features {
			if err := write(f); err != nil {
				return err
			}
		}
		for _, t := range s.Target {
			if err := write(t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// pairByName resolves a saved pair identity against the Table II catalog.
func pairByName(name string) (machine.Pair, error) {
	for _, p := range machine.AllPairs() {
		if p.Name() == name {
			return p, nil
		}
	}
	return machine.Pair{}, fmt.Errorf("train: unknown accelerator pair %q", name)
}

// Lookup returns the stored M solution of the sample whose
// characterization is closest (squared Euclidean distance over the 17
// features) to f, with the distance. ok is false for an empty database.
func (db *DB) Lookup(f feature.Vector) (m config.M, dist float64, ok bool) {
	best := -1
	bestDist := 0.0
	for i := range db.Samples {
		d := 0.0
		for j := range f {
			diff := f[j] - db.Samples[i].Features[j]
			d += diff * diff
		}
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return config.M{}, 0, false
	}
	return config.FromNormalized(db.Samples[best].Target, db.Limits), bestDist, true
}

// LookupPredictor wraps the profiler database as a predictor: the
// paper's pre-learning configuration path ("indexed using B,I tuples to
// get M solutions"). It needs no training beyond the database itself and
// serves as the non-parametric reference the learned models must beat in
// generalization.
type LookupPredictor struct {
	db *DB
}

// NewLookupPredictor wraps a database.
func NewLookupPredictor(db *DB) *LookupPredictor { return &LookupPredictor{db: db} }

// Name implements predict.Predictor.
func (l *LookupPredictor) Name() string { return "DB Lookup" }

// Predict implements predict.Predictor.
func (l *LookupPredictor) Predict(f feature.Vector) config.M {
	m, _, ok := l.db.Lookup(f)
	if !ok {
		return config.DefaultGPU(l.db.Limits)
	}
	return m
}
