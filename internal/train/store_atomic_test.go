package train

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heteromap/internal/machine"
)

// testDB builds a tiny deterministic database for persistence tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	return BuildDatabase(machine.PrimaryPair(), Config{Samples: 8, Seed: 3})
}

func TestSaveFileRoundTrip(t *testing.T) {
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "db.hmdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDBFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(db.Samples) {
		t.Fatalf("loaded %d samples, want %d", len(got.Samples), len(db.Samples))
	}
	for i := range db.Samples {
		if got.Samples[i] != db.Samples[i] {
			t.Fatalf("sample %d differs after round trip", i)
		}
	}
}

// TestTornWriteNeverLoadable simulates a mid-write kill: if the process
// dies with any strict byte prefix of the database on disk, LoadDB must
// refuse it. Combined with SaveFile's write-temp + rename, the real path
// can only ever hold a complete database.
func TestTornWriteNeverLoadable(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	dir := t.TempDir()
	torn := filepath.Join(dir, "torn.hmdb")
	// Every strict prefix is a possible kill point; sweep them all (the
	// file is small), including the empty file.
	for n := 0; n < len(full); n++ {
		if err := os.WriteFile(torn, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDBFile(torn); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded as a valid database", n, len(full))
		}
	}
}

// TestSaveFileFailureLeavesTargetIntact: when the atomic save cannot
// complete, the previously committed database is untouched and no temp
// litter survives under a loadable name.
func TestSaveFileFailureLeavesTargetIntact(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.hmdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A save into a missing directory fails before any rename.
	if err := db.SaveFile(filepath.Join(dir, "missing", "db.hmdb")); err == nil {
		t.Fatal("save into a missing directory unexpectedly succeeded")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save mutated the committed database")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".hmdb-") || strings.HasPrefix(e.Name(), ".durable-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
