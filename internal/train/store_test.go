package train

import (
	"bytes"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	pair := machine.PrimaryPair()
	db := BuildDatabase(pair, Config{Samples: 25, Seed: 9, Objective: Energy})

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Pair.Name() != pair.Name() {
		t.Fatalf("pair %q", back.Pair.Name())
	}
	if back.Objective != Energy {
		t.Fatalf("objective %v", back.Objective)
	}
	if len(back.Samples) != len(db.Samples) {
		t.Fatalf("samples %d", len(back.Samples))
	}
	for i := range db.Samples {
		if db.Samples[i] != back.Samples[i] {
			t.Fatalf("sample %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	pair := machine.PrimaryPair()
	db := BuildDatabase(pair, Config{Samples: 5, Seed: 1})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := LoadDB(bytes.NewReader(append([]byte("XXXX"), good[4:]...))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := LoadDB(bytes.NewReader(good[:len(good)/3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := LoadDB(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Unknown pair name.
	bad := append([]byte{}, good...)
	copy(bad[8:], []byte("ZZ"))
	if _, err := LoadDB(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown pair accepted")
	}
}

func TestLookupExactAndNearest(t *testing.T) {
	pair := machine.PrimaryPair()
	db := BuildDatabase(pair, Config{Samples: 50, Seed: 4})

	// An exact query returns its own stored target at distance 0.
	s := db.Samples[7]
	m, dist, ok := db.Lookup(s.Features)
	if !ok || dist != 0 {
		t.Fatalf("exact lookup dist=%v ok=%v", dist, ok)
	}
	want := config.FromNormalized(s.Target, db.Limits)
	if m != want {
		t.Fatalf("exact lookup returned %v want %v", m, want)
	}

	// A perturbed query returns a nearby sample's solution.
	q := s.Features
	q[0] = clampTenth(q[0] + 0.05)
	if _, dist, ok := db.Lookup(q); !ok || dist > 1 {
		t.Fatalf("nearest lookup dist=%v ok=%v", dist, ok)
	}
}

func clampTenth(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	return x
}

func TestLookupEmpty(t *testing.T) {
	db := &DB{Limits: machine.PrimaryPair().Limits()}
	if _, _, ok := db.Lookup(feature.Vector{}); ok {
		t.Fatal("empty database lookup should fail")
	}
	// The predictor falls back to a deployable default.
	p := NewLookupPredictor(db)
	if p.Name() != "DB Lookup" {
		t.Fatal("name")
	}
	m := p.Predict(feature.Vector{})
	if m.Clamp(db.Limits) != m {
		t.Fatal("fallback not deployable")
	}
}

func TestLookupPredictorGeneralizes(t *testing.T) {
	// On a dense database, nearest-neighbour lookup should usually agree
	// with the stored targets' accelerator choice for held-out points
	// near the manifold.
	pair := machine.PrimaryPair()
	db := BuildDatabase(pair, Config{Samples: 200, Seed: 6})
	holdDB := BuildDatabase(pair, Config{Samples: 40, Seed: 77})
	p := NewLookupPredictor(db)
	agree := 0
	for _, s := range holdDB.Samples {
		target := config.FromNormalized(s.Target, db.Limits)
		if p.Predict(s.Features).Accelerator == target.Accelerator {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(holdDB.Samples)); frac < 0.6 {
		t.Fatalf("lookup accelerator agreement %.2f too low", frac)
	}
}
