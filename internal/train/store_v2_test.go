package train

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heteromap/internal/durable"
	"heteromap/internal/machine"
)

// TestLegacyCompatLoad: a database written in the pre-checksum HMDB
// generation still loads, sample-for-sample.
func TestLegacyCompatLoad(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.SaveLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	got, aux, err := LoadDBAux(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy database rejected: %v", err)
	}
	if aux != nil {
		t.Fatal("legacy database reported aux blobs")
	}
	if len(got.Samples) != len(db.Samples) {
		t.Fatalf("loaded %d samples, want %d", len(got.Samples), len(db.Samples))
	}
	for i := range db.Samples {
		if got.Samples[i] != db.Samples[i] {
			t.Fatalf("sample %d differs after legacy round trip", i)
		}
	}
}

// TestSaveAuxRoundTrip: per-sample aux blobs ride inside the sealed
// format and come back byte-identical, while plain LoadDB ignores them.
func TestSaveAuxRoundTrip(t *testing.T) {
	db := testDB(t)
	aux := make([][]byte, len(db.Samples))
	for i := range aux {
		if i%2 == 0 {
			aux[i] = []byte(fmt.Sprintf("outcome-%d", i))
		}
	}
	path := filepath.Join(t.TempDir(), "db.hmdb")
	if err := db.SaveFileAux(path, aux, nil); err != nil {
		t.Fatal(err)
	}
	got, gotAux, err := LoadDBAuxFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(db.Samples) {
		t.Fatalf("loaded %d samples, want %d", len(got.Samples), len(db.Samples))
	}
	for i := range aux {
		if !bytes.Equal(gotAux[i], aux[i]) {
			t.Fatalf("aux %d differs: %q != %q", i, gotAux[i], aux[i])
		}
	}
	// The same file is a perfectly ordinary database to aux-blind readers.
	plain, err := LoadDBFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db.Samples {
		if plain.Samples[i] != db.Samples[i] {
			t.Fatalf("sample %d differs for aux-blind reader", i)
		}
	}
}

// TestV2RejectsEveryByteFlip: HMD2 is never parse-and-prayed — any
// single corrupted byte fails the load with ErrCorrupt (or a parse
// error for bytes that break framing before a checksum is reached).
func TestV2RejectsEveryByteFlip(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		mutated := append([]byte(nil), full...)
		mutated[i] ^= 0x20
		if _, err := LoadDB(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("byte flip at offset %d/%d loaded as a valid database", i, len(full))
		}
	}
	// Truncation at every length is likewise rejected (the seal is
	// missing), and trailing bytes after the seal are rejected too.
	for n := 0; n < len(full); n++ {
		if _, err := LoadDB(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded as a valid database", n, len(full))
		}
	}
	if _, err := LoadDB(bytes.NewReader(append(append([]byte(nil), full...), 0))); err == nil {
		t.Fatal("trailing garbage after the seal accepted")
	}
}

func TestVerifyFile(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.hmdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(path); err != nil {
		t.Fatalf("pristine database failed verification: %v", err)
	}
	// Bit-rot a payload byte in place (past the header).
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err := VerifyFile(path)
	if err == nil {
		t.Fatal("bit-rotted database passed verification")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("verification error %v does not wrap ErrCorrupt", err)
	}
}

// TestStoreKillPointSweep is the crash-safety property for the model
// store: a kill injected at every byte offset of a SaveFileAux — plus
// the commit window before the rename — leaves the committed predecessor
// loadable and byte-intact, with only quarantinable temp litter behind.
func TestStoreKillPointSweep(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "db.hmdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(before))
	stride := int64(1)
	if testing.Short() {
		stride = 37
	}
	for off := int64(0); off <= size; off += stride {
		kill := func(string) (int64, bool) { return off, true }
		err := db.SaveFileAux(path, nil, kill)
		if err == nil {
			t.Fatalf("offset %d: killed save reported success", off)
		}
		if !errors.Is(err, durable.ErrKilled) {
			t.Fatalf("offset %d: unexpected error %v", off, err)
		}
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("offset %d: committed database unreadable: %v", off, rerr)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("offset %d: killed save mutated the committed database", off)
		}
		if _, lerr := LoadDBFile(path); lerr != nil {
			t.Fatalf("offset %d: committed database no longer loads: %v", off, lerr)
		}
	}
	if n := durable.RemoveStaleTemps(dir); n == 0 {
		t.Fatal("kill sweep left no temp litter (kills did not land mid-write)")
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), durable.TempPrefix) {
			t.Fatalf("stale temp %s survived recovery sweep", e.Name())
		}
	}
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus for
// FuzzLoadDB when HM_WRITE_FUZZ_CORPUS=1; otherwise it verifies the
// corpus directory exists (CI's bounded fuzz run starts from it).
func TestRegenerateFuzzCorpus(t *testing.T) {
	corpusDir := filepath.Join("testdata", "fuzz", "FuzzLoadDB")
	if os.Getenv("HM_WRITE_FUZZ_CORPUS") == "" {
		if _, err := os.Stat(corpusDir); err != nil {
			t.Fatalf("checked-in corpus missing (regenerate with HM_WRITE_FUZZ_CORPUS=1): %v", err)
		}
		return
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(entry string, data []byte) {
		t.Helper()
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(corpusDir, entry), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db := BuildDatabase(machine.PrimaryPair(), Config{Samples: 3, Seed: 7})
	var v2 bytes.Buffer
	if err := db.Save(&v2); err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := db.SaveLegacy(&legacy); err != nil {
		t.Fatal(err)
	}
	write("sealed-v2", v2.Bytes())
	write("legacy-hmdb", legacy.Bytes())
	write("truncated-v2", v2.Bytes()[:len(v2.Bytes())/2])
	mut := append([]byte(nil), v2.Bytes()...)
	mut[len(mut)-6] ^= 0x01
	write("footer-bit-rot", mut)
}

// FuzzLoadDB feeds arbitrary bytes through both store generations'
// loaders: no input may panic, and no HMD2 input missing a valid seal
// may be accepted.
func FuzzLoadDB(f *testing.F) {
	db := BuildDatabase(machine.PrimaryPair(), Config{Samples: 3, Seed: 7})
	var v2 bytes.Buffer
	if err := db.Save(&v2); err != nil {
		f.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := db.SaveLegacy(&legacy); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(v2.Bytes())
	f.Add(legacy.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	mut := append([]byte(nil), v2.Bytes()...)
	mut[len(mut)-6] ^= 0x01
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, aux, err := LoadDBAux(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil database accepted without error")
		}
		// An accepted HMD2 input re-saves to a database with identical
		// samples (the loader only accepts what the writer produces).
		if len(data) >= 4 && string(data[:4]) == storeMagicV2 {
			var rt bytes.Buffer
			auxSlice := aux
			if auxSlice == nil {
				auxSlice = make([][]byte, len(got.Samples))
			}
			if err := got.SaveAux(&rt, auxSlice); err != nil {
				t.Fatalf("accepted database failed re-save: %v", err)
			}
			back, err := LoadDB(bytes.NewReader(rt.Bytes()))
			if err != nil {
				t.Fatalf("re-saved database failed reload: %v", err)
			}
			if len(back.Samples) != len(got.Samples) {
				t.Fatal("sample count changed across round trip")
			}
		}
	})
}
