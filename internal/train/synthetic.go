// Package train builds HeteroMap's offline training database (Section V):
// it synthesizes benchmark-input combinations over the (B, I) space — the
// paper's generated micro-benchmarks (Fig 9) running uniform-random and
// Kronecker graph sweeps (Table III) — finds the best-performing M vector
// for each combination with the autotuner, and trains the learners on the
// resulting (B, I) -> M samples.
package train

import (
	"math/rand"

	"heteromap/internal/feature"
	"heteromap/internal/profile"
	"heteromap/internal/stats"
)

// SyntheticCombo is one generated benchmark-input combination: its
// characterization, the materialized work profile the simulator executes,
// and the dataset footprint for the streaming model.
type SyntheticCombo struct {
	Features  feature.Vector
	Work      *profile.Work
	Footprint int64
}

// RandomB draws a valid benchmark characterization. Half the samples are
// fully random phase mixes (one to three phases, as in the Fig 9
// examples, with the paper's structural couplings: push-pop implies some
// contention, data-movement shares bounded to a budget); the other half
// are perturbations of the real benchmark archetypes — the paper's
// generated micro-benchmarks follow the same generic V-E loop
// formulation as the real workloads, so the synthetic space covers their
// neighbourhood densely.
func RandomB(rng *rand.Rand) feature.BVector {
	if rng.Intn(2) == 0 {
		return perturbedArchetype(rng)
	}
	return randomMixB(rng)
}

// archetypeNames lists the real benchmarks whose neighbourhoods the
// synthetic sweep densifies.
var archetypeNames = []string{
	"SSSP-BF", "SSSP-Delta", "BFS", "DFS", "PageRank", "PageRank-DP",
	"Tri.Cnt", "Comm", "Conn.Comp",
}

func perturbedArchetype(rng *rand.Rand) feature.BVector {
	b, err := feature.Catalog(archetypeNames[rng.Intn(len(archetypeNames))])
	if err != nil {
		// The catalog covers every archetype name; fall back defensively.
		return randomMixB(rng)
	}
	// Jitter the non-phase variables by one discretization step.
	for i := feature.BFloatingPoint; i < feature.NumB; i++ {
		b[i] = stats.Clamp(b[i]+float64(rng.Intn(3)-1)/10, 0, 1)
	}
	// Occasionally shift one phase share to a neighbour kind.
	if rng.Intn(2) == 0 {
		from := rng.Intn(5)
		to := rng.Intn(5)
		if b[from] >= 0.1 && from != to {
			b[from] -= 0.1
			b[to] += 0.1
		}
	}
	// Preserve the structural coupling: push-pop ordering always carries
	// contention pressure.
	if b[feature.BPushPop] > 0 && b[feature.BContention] < 0.2 {
		b[feature.BContention] = 0.2
	}
	return b
}

func randomMixB(rng *rand.Rand) feature.BVector {
	var b feature.BVector

	// Phase mix: pick 1-3 of the five kinds and split the program.
	kinds := rng.Perm(5)
	nPhases := 1 + rng.Intn(3)
	remaining := 10 // tenths
	for i := 0; i < nPhases; i++ {
		share := remaining
		if i < nPhases-1 {
			if remaining > 1 {
				share = 1 + rng.Intn(remaining-1)
			}
		}
		b[kinds[i]] += float64(share) / 10
		remaining -= share
		if remaining <= 0 {
			break
		}
	}
	if remaining > 0 {
		b[kinds[0]] += float64(remaining) / 10
	}

	tenth := func(max int) float64 { return float64(rng.Intn(max+1)) / 10 }

	b[feature.BFloatingPoint] = tenth(10)
	// Addressing split: loop-indexed plus indirect bounded to ~1.
	idx := rng.Intn(9)
	b[feature.BDataAddressing] = float64(idx) / 10
	b[feature.BIndirect] = tenth(9 - idx)
	// Data-movement classes sum to about 1.
	ro := rng.Intn(8)
	rw := rng.Intn(10 - ro)
	b[feature.BReadOnly] = float64(ro) / 10
	b[feature.BReadWrite] = float64(rw) / 10
	b[feature.BLocal] = float64(10-ro-rw) / 10 * float64(rng.Intn(2))
	b[feature.BContention] = tenth(8)
	// Push-pop phases always carry some contention/ordering pressure.
	if b[feature.BPushPop] > 0 && b[feature.BContention] < 0.2 {
		b[feature.BContention] = 0.2
	}
	b[feature.BBarriers] = tenth(6)
	return b
}

// realIVectors are the Fig 4 characterizations of the Table I datasets;
// the synthetic input sweep densifies their neighbourhood alongside the
// uniform Table III coverage.
var realIVectors = []feature.IVector{
	{0.1, 0.1, 0.0, 0.8}, // CA
	{0.2, 0.4, 0.7, 0.0}, // FB
	{0.3, 0.4, 0.6, 0.1}, // LJ
	{0.7, 0.8, 1.0, 0.0}, // Twtr
	{0.8, 0.8, 0.5, 0.2}, // Frnd
	{0.0, 0.0, 0.4, 0.0}, // CO
	{0.1, 0.3, 0.2, 0.0}, // CAGE
	{0.5, 0.6, 0.1, 1.0}, // Rgg
	{0.9, 0.8, 0.8, 0.0}, // Kron
}

// RandomI draws an input characterization from the Table III synthetic
// sweep ranges (16-65M vertices, 16-2B edges, degrees 1-32K), extended
// across the full diameter axis so the trained models also cover
// road-network-like inputs; half the samples perturb a real dataset's
// characterization.
func RandomI(rng *rand.Rand) feature.IVector {
	tenth := func(lo, hi int) float64 { return float64(lo+rng.Intn(hi-lo+1)) / 10 }
	var iv feature.IVector
	if rng.Intn(2) == 0 {
		iv = realIVectors[rng.Intn(len(realIVectors))]
		for i := range iv {
			iv[i] = stats.Clamp(iv[i]+float64(rng.Intn(3)-1)/10, 0, 1)
		}
	} else {
		iv = feature.IVector{
			tenth(0, 10), // I1 vertex count
			tenth(0, 10), // I2 edge count
			tenth(0, 10), // I3 max degree
			tenth(0, 10), // I4 diameter
		}
	}
	// Keep edge count loosely consistent with vertex count (at least one
	// edge per vertex, at most max-degree-bounded).
	if iv[1] < iv[0]-0.3 {
		iv[1] = iv[0] - 0.3
	}
	if iv[1] > iv[0]+0.4 {
		iv[1] = iv[0] + 0.4
	}
	iv[1] = stats.Discretize(iv[1], 0.1)
	return iv
}

// Synthesize materializes a work profile for a (B, I) characterization —
// the executable form of the paper's generated micro-benchmarks. The
// profile's magnitudes come from inverting the I normalization; its phase
// structure, arithmetic mix, data-movement classes and synchronization
// come from the B values, mirroring how Fig 9's pseudo-benchmarks map to
// B settings.
func Synthesize(b feature.BVector, iv feature.IVector, rng *rand.Rand) SyntheticCombo {
	v, e, maxDeg, dia := feature.InvertI(iv)

	// Convergence iterations follow the dependency structure; cap to
	// keep magnitudes within the real benchmarks' envelope.
	iters := int64(1 + dia/4)
	if iters > 256 {
		iters = 256
	}

	w := &profile.Work{
		Benchmark:  "synthetic",
		Graph:      "synthetic",
		Iterations: iters,
		Barriers:   int64(b[feature.BBarriers]*10) * iters,
		// Locality is a structural property the characterization only
		// partially captures: high-diameter graphs (roads, meshes) are
		// spatially regular, hub-heavy graphs are not; the residual is
		// genuine unmodeled variance that caps learner accuracy, exactly
		// as real graphs do.
		Locality: stats.Clamp(0.1+0.7*iv[3]+(0.15+0.55*(1-iv[3]))*rng.Float64()-0.2*iv[2], 0, 1),
		Skew:     stats.Clamp(iv[2]*1.5*rng.Float64()+iv[2]*0.5, 0, 3),
	}
	_ = maxDeg

	totalData := float64(e*4 + v*16)
	phaseKinds := []profile.PhaseKind{
		profile.VertexDivision, profile.Pareto, profile.ParetoDynamic,
		profile.PushPop, profile.Reduction,
	}
	for i, kind := range phaseKinds {
		share := b[i]
		if share <= 0 {
			continue
		}
		edgeOps := int64(float64(e) * share * float64(iters))
		vertexOps := int64(float64(v) * share * float64(iters))
		accesses := edgeOps * 2
		p := profile.Phase{
			Kind:             kind,
			Name:             kind.String(),
			VertexOps:        vertexOps,
			EdgeOps:          edgeOps,
			IntOps:           int64(float64(edgeOps) * (1 - b[feature.BFloatingPoint])),
			FPOps:            int64(float64(edgeOps) * b[feature.BFloatingPoint]),
			IndexedAccesses:  int64(float64(accesses) * b[feature.BDataAddressing]),
			IndirectAccesses: int64(float64(accesses) * b[feature.BIndirect]),
			ReadOnlyBytes:    int64(totalData * b[feature.BReadOnly] * share),
			ReadWriteBytes:   int64(totalData * b[feature.BReadWrite] * share),
			LocalBytes:       int64(totalData * b[feature.BLocal] * share),
			Atomics:          int64(float64(edgeOps) * b[feature.BContention] / 20),
		}
		switch kind {
		case profile.ParetoDynamic:
			p.ChainLength = dia * iters
			p.ParallelItems = v / maxI64(dia, 1)
		case profile.PushPop:
			p.ChainLength = dia * iters
			p.ParallelItems = maxI64(v/maxI64(dia, 1)/4, 1)
			p.PushPops = vertexOps * 2
		case profile.Reduction:
			p.ChainLength = iters
			p.ParallelItems = v
			p.Atomics += vertexOps / 16
		default:
			p.ChainLength = iters
			p.ParallelItems = v
		}
		w.Phases = append(w.Phases, p)
	}
	if len(w.Phases) == 0 {
		// Degenerate phase mix: fall back to pure vertex division.
		w.Phases = append(w.Phases, profile.Phase{
			Kind: profile.VertexDivision, Name: "vertex-division",
			VertexOps: v, EdgeOps: e, IndexedAccesses: e * 2,
			ReadOnlyBytes: int64(totalData / 2), ReadWriteBytes: int64(totalData / 2),
			ChainLength: 1, ParallelItems: v,
		})
	}

	footprint := v*8 + e*8
	return SyntheticCombo{
		Features:  feature.Combine(b, iv),
		Work:      w,
		Footprint: footprint,
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
