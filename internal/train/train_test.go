package train

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
)

func TestRandomBProducesValidPhaseMix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := RandomB(rng)
		if math.Abs(b.PhaseSum()-1) > 1e-9 {
			return false
		}
		for _, v := range b {
			if v < 0 || v > 1 {
				return false
			}
		}
		// Paper coupling: push-pop phases imply contention.
		if b[feature.BPushPop] > 0 && b[feature.BContention] < 0.2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBDiverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := map[int]bool{}
	for i := 0; i < 200; i++ {
		b := RandomB(rng)
		for k := 0; k <= feature.BReduction; k++ {
			if b[k] > 0 {
				kinds[k] = true
			}
		}
	}
	if len(kinds) != 5 {
		t.Fatalf("sampled phase kinds %v want all 5", kinds)
	}
}

func TestRandomIConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		iv := RandomI(rng)
		for _, v := range iv {
			if v < 0 || v > 1 {
				return false
			}
		}
		// Edge count loosely tracks vertex count.
		return iv[1] >= iv[0]-0.31 && iv[1] <= iv[0]+0.41
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeProducesValidWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		combo := Synthesize(RandomB(rng), RandomI(rng), rng)
		if err := combo.Work.Validate(); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if combo.Footprint <= 0 {
			t.Fatalf("sample %d: footprint %d", i, combo.Footprint)
		}
		if combo.Work.TotalOps() == 0 {
			t.Fatalf("sample %d: empty work", i)
		}
	}
}

func TestSynthesizeReflectsBVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var fpHeavy, fpLight feature.BVector
	fpHeavy[feature.BVertexDivision] = 1
	fpHeavy[feature.BFloatingPoint] = 0.9
	fpHeavy[feature.BDataAddressing] = 0.8
	fpLight = fpHeavy
	fpLight[feature.BFloatingPoint] = 0
	iv := feature.IVector{0.5, 0.5, 0.3, 0.2}
	heavy := Synthesize(fpHeavy, iv, rng)
	light := Synthesize(fpLight, iv, rng)
	if heavy.Work.TotalFPOps() <= light.Work.TotalFPOps() {
		t.Fatal("B6 did not increase FP ops")
	}
	var pushy feature.BVector
	pushy[feature.BPushPop] = 1
	pushy[feature.BContention] = 0.4
	pp := Synthesize(pushy, iv, rng)
	if pp.Work.Phases[0].PushPops == 0 {
		t.Fatal("B4 phase has no push-pops")
	}
}

func TestSynthesizeScalesWithI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var b feature.BVector
	b[feature.BVertexDivision] = 1
	b[feature.BDataAddressing] = 0.8
	small := Synthesize(b, feature.IVector{0.1, 0.1, 0, 0}, rand.New(rand.NewSource(3)))
	big := Synthesize(b, feature.IVector{0.9, 0.9, 0, 0}, rng)
	if big.Work.TotalEdgeOps() <= small.Work.TotalEdgeOps()*10 {
		t.Fatalf("I scaling too weak: %d vs %d",
			big.Work.TotalEdgeOps(), small.Work.TotalEdgeOps())
	}
	if big.Footprint <= small.Footprint {
		t.Fatal("footprint must grow with I")
	}
}

func TestObjectiveString(t *testing.T) {
	if Performance.String() != "performance" || Energy.String() != "energy" {
		t.Fatal("objective strings")
	}
}

func TestMetric(t *testing.T) {
	pair := machine.PrimaryPair()
	rng := rand.New(rand.NewSource(2))
	combo := Synthesize(RandomB(rng), RandomI(rng), rng)
	job := machine.Job{Work: combo.Work, FootprintBytes: combo.Footprint}
	m := config.DefaultGPU(pair.Limits())
	perf := Metric(pair, Performance, job, m)
	energy := Metric(pair, Energy, job, m)
	rep := pair.GPU.Evaluate(job, m)
	if perf != rep.Seconds || energy != rep.EnergyJ {
		t.Fatal("metric must match the underlying report")
	}
}

func TestBuildDatabaseSmall(t *testing.T) {
	pair := machine.PrimaryPair()
	db := BuildDatabase(pair, Config{Samples: 40, Seed: 7})
	if len(db.Samples) != 40 {
		t.Fatalf("samples=%d", len(db.Samples))
	}
	gpuCount := 0
	for i, s := range db.Samples {
		for _, v := range s.Target {
			if v < 0 || v > 1 {
				t.Fatalf("sample %d target out of range", i)
			}
		}
		if s.Target[0] < 0.5 {
			gpuCount++
		}
	}
	// Both accelerators must win some synthetic combinations, otherwise
	// there is nothing to learn.
	if gpuCount == 0 || gpuCount == 40 {
		t.Fatalf("degenerate database: %d/40 GPU winners", gpuCount)
	}
}

func TestBuildDatabaseDeterministic(t *testing.T) {
	pair := machine.PrimaryPair()
	a := BuildDatabase(pair, Config{Samples: 15, Seed: 3})
	b := BuildDatabase(pair, Config{Samples: 15, Seed: 3})
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs between identical builds", i)
		}
	}
}

func TestBuildDatabaseTargetsAreGridOptimal(t *testing.T) {
	// Each stored target must actually be the best of the sweep grid for
	// its combination (spot-check a few).
	pair := machine.PrimaryPair()
	cfg := Config{Samples: 5, Seed: 11}
	db := BuildDatabase(pair, cfg)
	cands := config.Enumerate(db.Limits)
	for i := range db.Samples {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		combo := Synthesize(RandomB(rng), RandomI(rng), rng)
		job := machine.Job{Work: combo.Work, FootprintBytes: combo.Footprint}
		target := config.FromNormalized(db.Samples[i].Target, db.Limits)
		targetScore := Metric(pair, cfg.Objective, job, target)
		for _, c := range cands {
			if Metric(pair, cfg.Objective, job, c) < targetScore-1e-12 {
				t.Fatalf("sample %d target is not grid-optimal", i)
			}
		}
	}
}

func TestSplit(t *testing.T) {
	pair := machine.PrimaryPair()
	db := BuildDatabase(pair, Config{Samples: 30, Seed: 5})
	trainSet, holdout := db.Split(0.2, 1)
	if len(trainSet)+len(holdout) != 30 {
		t.Fatalf("split sizes %d+%d", len(trainSet), len(holdout))
	}
	if len(holdout) != 6 {
		t.Fatalf("holdout=%d want 6", len(holdout))
	}
	empty := &DB{}
	a, b := empty.Split(0.5, 1)
	if a != nil || b != nil {
		t.Fatal("empty db split")
	}
}

func TestEnergyObjectiveChangesTargets(t *testing.T) {
	pair := machine.PrimaryPair()
	perf := BuildDatabase(pair, Config{Samples: 60, Seed: 13})
	engy := BuildDatabase(pair, Config{Samples: 60, Seed: 13, Objective: Energy})
	diff := 0
	for i := range perf.Samples {
		if perf.Samples[i].Target != engy.Samples[i].Target {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("energy objective produced identical targets")
	}
}
