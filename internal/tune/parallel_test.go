package tune

// The parallel sweep must be an exact drop-in for the serial one: same
// scores in the same order, same winner under the earliest-wins tie
// rule, no matter how the worker pool interleaves. CI runs this package
// under -race, so these tests double as the data-race probe for the
// shared-counter pool.

import (
	"sync/atomic"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/machine"
)

// seededEval is a deterministic, concurrency-safe cost function that
// still depends on every M variable, so index mix-ups cannot cancel out.
func seededEval(m config.M, limits config.Limits) float64 {
	v := m.Normalize(limits)
	s := 0.0
	for i, x := range v {
		s += x * float64(i+1) * 0.731
	}
	return s
}

func TestEvaluateAllMatchesSerial(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	cands := config.Enumerate(limits)
	if len(cands) < 100 {
		t.Fatalf("enumeration too small to exercise the pool: %d", len(cands))
	}
	eval := func(m config.M) float64 { return seededEval(m, limits) }

	want := make([]float64, len(cands))
	for i, m := range cands {
		want[i] = eval(m)
	}
	got := EvaluateAll(cands, eval)
	if len(got) != len(want) {
		t.Fatalf("score count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d: parallel %v != serial %v", i, got[i], want[i])
		}
	}

	// Exhaustive must agree with ExhaustiveSerial bit-for-bit, including
	// the earliest-candidate tie rule.
	p, s := Exhaustive(cands, eval), ExhaustiveSerial(cands, eval)
	if p.Best != s.Best || p.Score != s.Score || p.Evals != s.Evals {
		t.Fatalf("Exhaustive %+v != ExhaustiveSerial %+v", p, s)
	}
}

// Ties resolve to the earliest candidate even when later duplicates
// score identically — the property that keeps sweeps deterministic.
func TestExhaustiveTieBreaksEarliest(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	cands := config.Enumerate(limits)[:64]
	// Constant cost: everything ties; index 0 must win in both paths.
	constEval := func(config.M) float64 { return 1 }
	if p := Exhaustive(cands, constEval); p.Best != cands[0] {
		t.Fatalf("parallel tie broke to %+v, want candidate 0", p.Best)
	}
	if s := ExhaustiveSerial(cands, constEval); s.Best != cands[0] {
		t.Fatalf("serial tie broke to %+v, want candidate 0", s.Best)
	}
}

// Every candidate is evaluated exactly once — the shared counter must
// neither skip nor double-dispatch under contention.
func TestEvaluateAllVisitsEachCandidateOnce(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	cands := config.Enumerate(limits)
	visits := make([]int32, len(cands))
	index := map[config.M]int{}
	for i, m := range cands {
		index[m] = i
	}
	if len(index) != len(cands) {
		// Duplicate candidates would make the reverse index ambiguous.
		t.Skipf("enumeration has duplicates (%d unique of %d)", len(index), len(cands))
	}
	EvaluateAll(cands, func(m config.M) float64 {
		atomic.AddInt32(&visits[index[m]], 1)
		return 0
	})
	for i, n := range visits {
		if n != 1 {
			t.Fatalf("candidate %d evaluated %d times", i, n)
		}
	}
}

// Random and Ensemble stay deterministic for a fixed seed — a property
// the training database build depends on.
func TestSearchDeterministicPerSeed(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	eval := func(m config.M) float64 { return seededEval(m, limits) }
	if a, b := Random(limits, 50, 9, eval), Random(limits, 50, 9, eval); a != b {
		t.Fatalf("Random diverged for one seed: %+v vs %+v", a, b)
	}
	if a, b := Ensemble(limits, 9, eval), Ensemble(limits, 9, eval); a != b {
		t.Fatalf("Ensemble diverged for one seed: %+v vs %+v", a, b)
	}
	// ...and different seeds explore differently.
	if a, b := Random(limits, 50, 1, eval), Random(limits, 50, 2, eval); a == b {
		t.Log("seeds 1 and 2 coincided (allowed, but surprising)")
	}
}
