// Package tune implements the offline auto-tuning machinery the paper
// delegates to OpenTuner: given an evaluation function over machine
// configurations, it finds low-cost configurations by exhaustive sweep
// (the "ideal" baseline that "manually optimizes by running all possible
// configurations"), random search, hill climbing, or an OpenTuner-style
// ensemble that mixes the techniques.
package tune

import (
	"math/rand"
	"runtime"
	"sync"

	"heteromap/internal/config"
)

// EvalFunc scores one configuration; lower is better. Implementations
// must be safe for concurrent use (the machine model is pure).
type EvalFunc func(m config.M) float64

// Result is the outcome of a tuning run.
type Result struct {
	Best  config.M
	Score float64
	Evals int
}

// EvaluateAll scores every candidate concurrently and returns the scores
// in candidate order.
func EvaluateAll(cands []config.M, eval EvalFunc) []float64 {
	scores := make([]float64, len(cands))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(cands) {
					return
				}
				scores[i] = eval(cands[i])
			}
		}()
	}
	wg.Wait()
	return scores
}

// Exhaustive evaluates every candidate and returns the best. Ties resolve
// to the earliest candidate, keeping sweeps deterministic.
func Exhaustive(cands []config.M, eval EvalFunc) Result {
	scores := EvaluateAll(cands, eval)
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	if len(cands) == 0 {
		return Result{}
	}
	return Result{Best: cands[best], Score: scores[best], Evals: len(cands)}
}

// ExhaustiveSerial is Exhaustive without goroutines, for callers that are
// already running inside a worker pool.
func ExhaustiveSerial(cands []config.M, eval EvalFunc) Result {
	if len(cands) == 0 {
		return Result{}
	}
	best := 0
	bestScore := eval(cands[0])
	for i := 1; i < len(cands); i++ {
		if s := eval(cands[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	return Result{Best: cands[best], Score: bestScore, Evals: len(cands)}
}

// Random samples n random configurations within the limits (half GPU,
// half multicore) and returns the best.
func Random(limits config.Limits, n int, seed int64, eval EvalFunc) Result {
	rng := rand.New(rand.NewSource(seed))
	cands := make([]config.M, 0, n)
	for i := 0; i < n; i++ {
		cands = append(cands, randomM(limits, rng))
	}
	r := Exhaustive(cands, eval)
	r.Evals = n
	return r
}

// randomM draws a uniformly random normalized vector and decodes it.
func randomM(limits config.Limits, rng *rand.Rand) config.M {
	var v [config.NumVariables]float64
	for i := range v {
		v[i] = rng.Float64()
	}
	return config.FromNormalized(v, limits)
}

// HillClimb starts from a configuration and greedily perturbs one
// normalized dimension at a time (±step) until no single move improves,
// or the evaluation budget is exhausted.
func HillClimb(limits config.Limits, start config.M, budget int, eval EvalFunc) Result {
	cur := start.Clamp(limits)
	curScore := eval(cur)
	evals := 1
	step := 0.125
	for evals < budget {
		improved := false
		v := cur.Normalize(limits)
		for dim := 0; dim < config.NumVariables && evals < budget; dim++ {
			for _, dir := range []float64{+step, -step} {
				if evals >= budget {
					break
				}
				cand := v
				cand[dim] += dir
				if cand[dim] < 0 || cand[dim] > 1 {
					continue
				}
				m := config.FromNormalized(cand, limits)
				s := eval(m)
				evals++
				if s < curScore {
					cur, curScore, v = m, s, cand
					improved = true
				}
			}
		}
		if !improved {
			if step <= 0.03 {
				break
			}
			step /= 2
		}
	}
	return Result{Best: cur, Score: curScore, Evals: evals}
}

// Ensemble is the OpenTuner-style search used to build the offline
// training database: seed with the coarse grids, add random exploration,
// then refine the incumbent with hill climbing.
func Ensemble(limits config.Limits, seed int64, eval EvalFunc) Result {
	grid := Exhaustive(config.Enumerate(limits), eval)
	rnd := Random(limits, 64, seed, eval)
	best := grid
	if rnd.Score < best.Score {
		best = rnd
	}
	refined := HillClimb(limits, best.Best, 256, eval)
	refined.Evals += grid.Evals + rnd.Evals
	if refined.Score > best.Score {
		refined.Best, refined.Score = best.Best, best.Score
	}
	return refined
}
