package tune

import (
	"math"
	"sync/atomic"
	"testing"

	"heteromap/internal/config"
)

func limits() config.Limits {
	return config.Limits{
		MaxCores: 61, MaxThreadsPerCore: 4, MaxSIMD: 16,
		MaxGlobalThreads: 8192, MaxLocalThreads: 256,
	}
}

// quadratic scores configurations by distance of their normalized vector
// from a fixed optimum; it is smooth, deterministic and has one minimum.
func quadratic(l config.Limits) EvalFunc {
	var target [config.NumVariables]float64
	for i := range target {
		target[i] = 0.5
	}
	return func(m config.M) float64 {
		v := m.Normalize(l)
		sum := 0.0
		for i := range v {
			d := v[i] - target[i]
			sum += d * d
		}
		return sum
	}
}

func TestExhaustiveFindsGridMinimum(t *testing.T) {
	l := limits()
	eval := quadratic(l)
	cands := config.Enumerate(l)
	res := Exhaustive(cands, eval)
	if res.Evals != len(cands) {
		t.Fatalf("evals=%d want %d", res.Evals, len(cands))
	}
	for _, c := range cands {
		if eval(c) < res.Score {
			t.Fatalf("exhaustive missed a better candidate")
		}
	}
}

func TestExhaustiveSerialMatchesParallel(t *testing.T) {
	l := limits()
	eval := quadratic(l)
	cands := config.Enumerate(l)
	a := Exhaustive(cands, eval)
	b := ExhaustiveSerial(cands, eval)
	if a.Score != b.Score || a.Best != b.Best {
		t.Fatalf("parallel/serial disagree: %v vs %v", a.Score, b.Score)
	}
}

func TestExhaustiveDeterministicTieBreak(t *testing.T) {
	cands := config.Enumerate(limits())
	constant := func(config.M) float64 { return 1 }
	res := Exhaustive(cands, constant)
	if res.Best != cands[0] {
		t.Fatal("ties must resolve to the earliest candidate")
	}
}

func TestExhaustiveEmpty(t *testing.T) {
	res := Exhaustive(nil, func(config.M) float64 { return 0 })
	if res.Evals != 0 {
		t.Fatal("empty candidate list")
	}
}

func TestEvaluateAllOrderAndCount(t *testing.T) {
	l := limits()
	cands := config.Enumerate(l)[:50]
	var calls atomic.Int64
	scores := EvaluateAll(cands, func(m config.M) float64 {
		calls.Add(1)
		return float64(m.Cores + m.GlobalThreads)
	})
	if int(calls.Load()) != len(cands) {
		t.Fatalf("calls=%d want %d", calls.Load(), len(cands))
	}
	for i, m := range cands {
		if scores[i] != float64(m.Cores+m.GlobalThreads) {
			t.Fatalf("score %d out of order", i)
		}
	}
}

func TestRandomRespectsBudgetAndSeed(t *testing.T) {
	l := limits()
	eval := quadratic(l)
	a := Random(l, 50, 7, eval)
	b := Random(l, 50, 7, eval)
	if a.Score != b.Score {
		t.Fatal("same seed, different result")
	}
	if a.Evals != 50 {
		t.Fatalf("evals=%d", a.Evals)
	}
}

func TestHillClimbImproves(t *testing.T) {
	l := limits()
	eval := quadratic(l)
	start := config.DefaultMulticore(l) // far from the 0.5-vector optimum
	startScore := eval(start)
	res := HillClimb(l, start, 400, eval)
	if res.Score >= startScore {
		t.Fatalf("hill climb did not improve: %v -> %v", startScore, res.Score)
	}
	if res.Evals > 400 {
		t.Fatalf("budget exceeded: %d", res.Evals)
	}
}

func TestHillClimbRespectsBudget(t *testing.T) {
	l := limits()
	var calls atomic.Int64
	eval := func(m config.M) float64 {
		calls.Add(1)
		return quadratic(l)(m)
	}
	HillClimb(l, config.DefaultGPU(l), 25, eval)
	if calls.Load() > 25 {
		t.Fatalf("eval calls %d exceed budget 25", calls.Load())
	}
}

func TestEnsembleAtLeastAsGoodAsGrid(t *testing.T) {
	l := limits()
	eval := quadratic(l)
	grid := Exhaustive(config.Enumerate(l), eval)
	ens := Ensemble(l, 3, eval)
	if ens.Score > grid.Score+1e-12 {
		t.Fatalf("ensemble (%v) worse than plain grid (%v)", ens.Score, grid.Score)
	}
}

func TestEnsembleDeterministic(t *testing.T) {
	l := limits()
	eval := quadratic(l)
	a := Ensemble(l, 11, eval)
	b := Ensemble(l, 11, eval)
	if math.Abs(a.Score-b.Score) > 1e-15 {
		t.Fatal("ensemble not deterministic for a fixed seed")
	}
}
